"""IEEE 802.15.4 (ZigBee) 2.4 GHz O-QPSK physical layer.

Used for the generality experiment of the paper (§4.5): the interscatter
tag adapts its single-sideband backscatter to synthesize 250 kbps
ZigBee-compliant packets from the same Bluetooth single tone, received by a
commodity TI CC2531.  The PHY here implements the 2.4 GHz DSSS O-QPSK mode:
each 4-bit symbol maps to a 32-chip pseudo-noise sequence, chips are
O-QPSK-modulated with half-sine pulse shaping at 2 Mchip/s.
"""

from repro.zigbee.chips import CHIP_SEQUENCES, symbol_to_chips, chips_to_symbol
from repro.zigbee.packet import ZigbeeFrame, build_phy_frame, parse_phy_frame
from repro.zigbee.oqpsk import OqpskModulator, OqpskDemodulator
from repro.zigbee.transmitter import ZigbeeTransmitter, ZigbeePacketWaveform
from repro.zigbee.receiver import ZigbeeReceiver, ZigbeeDecodeResult
from repro.zigbee.channels import zigbee_channel_frequency_mhz, ZIGBEE_CHANNELS

__all__ = [
    "CHIP_SEQUENCES",
    "symbol_to_chips",
    "chips_to_symbol",
    "ZigbeeFrame",
    "build_phy_frame",
    "parse_phy_frame",
    "OqpskModulator",
    "OqpskDemodulator",
    "ZigbeeTransmitter",
    "ZigbeePacketWaveform",
    "ZigbeeReceiver",
    "ZigbeeDecodeResult",
    "zigbee_channel_frequency_mhz",
    "ZIGBEE_CHANNELS",
]
