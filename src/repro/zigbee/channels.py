"""IEEE 802.15.4 channel map for the 2.4 GHz band.

Sixteen channels (11-26) spaced 5 MHz apart starting at 2405 MHz.  The paper
backscatters BLE advertising channel 38 (2426 MHz) to ZigBee channel 14
(2420 MHz) — a −6 MHz shift (§4.5).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["ZIGBEE_CHANNELS", "zigbee_channel_frequency_mhz", "ZIGBEE_CHANNEL_BANDWIDTH_MHZ"]

#: Channel number → centre frequency (MHz) for the 2.4 GHz O-QPSK PHY.
ZIGBEE_CHANNELS: dict[int, float] = {ch: 2405.0 + 5.0 * (ch - 11) for ch in range(11, 27)}

#: Occupied bandwidth of a 2.4 GHz 802.15.4 channel.
ZIGBEE_CHANNEL_BANDWIDTH_MHZ = 5.0


def zigbee_channel_frequency_mhz(channel: int) -> float:
    """Centre frequency of an 802.15.4 2.4 GHz channel (11-26)."""
    if channel not in ZIGBEE_CHANNELS:
        raise ConfigurationError(f"ZigBee channel must be 11-26, got {channel}")
    return ZIGBEE_CHANNELS[channel]
