"""802.15.4 DSSS chip sequences for the 2.4 GHz O-QPSK PHY.

Each 4-bit symbol (LSB first within each octet) maps to one of sixteen
nearly-orthogonal 32-chip pseudo-noise sequences (IEEE 802.15.4-2011 Table
73).  Symbols 8-15 reuse the sequences of 0-7 with the odd-indexed chips
inverted (equivalently, a conjugation in the O-QPSK domain).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CHIP_SEQUENCES", "symbol_to_chips", "chips_to_symbol", "CHIPS_PER_SYMBOL"]

#: Chips per 4-bit symbol.
CHIPS_PER_SYMBOL = 32

#: Base chip sequence for symbol 0 (c0 first), IEEE 802.15.4-2011 Table 73.
_SYMBOL0 = np.array(
    [1, 1, 0, 1, 1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 1, 1,
     0, 1, 0, 1, 0, 0, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0],
    dtype=np.uint8,
)


def _build_sequences() -> dict[int, np.ndarray]:
    """Generate all sixteen chip sequences from the symbol-0 base sequence.

    Symbols 1-7 are cyclic shifts of symbol 0 by 4·k chips (to the right);
    symbols 8-15 invert the even-indexed chips... strictly, per the standard
    they are the same shifts of a conjugated base sequence in which every
    second chip (the Q chips) is complemented.
    """
    sequences: dict[int, np.ndarray] = {}
    for k in range(8):
        sequences[k] = np.roll(_SYMBOL0, 4 * k)
    conjugated = _SYMBOL0.copy()
    conjugated[1::2] ^= 1
    for k in range(8):
        sequences[8 + k] = np.roll(conjugated, 4 * k)
    return sequences


#: Symbol value (0-15) → 32-chip sequence.
CHIP_SEQUENCES: dict[int, np.ndarray] = _build_sequences()


def symbol_to_chips(symbol: int) -> np.ndarray:
    """Return the 32-chip sequence for a 4-bit symbol value."""
    if not 0 <= symbol <= 15:
        raise ConfigurationError(f"802.15.4 symbol must be 0-15, got {symbol}")
    return CHIP_SEQUENCES[symbol].copy()


def chips_to_symbol(chips: np.ndarray) -> tuple[int, int]:
    """Best-match decode of 32 (possibly corrupted) chips.

    Returns
    -------
    (symbol, distance):
        The most likely symbol value and its Hamming distance from the
        received chips.
    """
    chips = np.asarray(chips).ravel()
    if chips.size != CHIPS_PER_SYMBOL:
        raise ValueError(f"expected {CHIPS_PER_SYMBOL} chips, got {chips.size}")
    hard = (chips > 0.5).astype(np.uint8) if chips.dtype != np.uint8 else chips
    best_symbol = 0
    best_distance = CHIPS_PER_SYMBOL + 1
    for symbol, sequence in CHIP_SEQUENCES.items():
        distance = int(np.count_nonzero(sequence != hard))
        if distance < best_distance:
            best_distance = distance
            best_symbol = symbol
    return best_symbol, best_distance
