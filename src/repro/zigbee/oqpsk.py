"""Offset-QPSK modulation with half-sine pulse shaping (802.15.4, 2.4 GHz).

Chips are split alternately onto the I (even-indexed) and Q (odd-indexed)
rails; each rail is shaped by a half-sine pulse spanning two chip periods
and the Q rail is delayed by one chip period.  Chip rate is 2 Mchip/s.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["CHIP_RATE_HZ", "OqpskWaveform", "OqpskModulator", "OqpskDemodulator"]

#: 802.15.4 2.4 GHz chip rate.
CHIP_RATE_HZ = 2_000_000.0


@dataclass(frozen=True)
class OqpskWaveform:
    """Complex baseband O-QPSK waveform.

    Attributes
    ----------
    samples:
        Complex baseband samples.
    sample_rate_hz:
        Sample rate (chip rate × samples per chip).
    num_chips:
        Number of chips encoded.
    """

    samples: np.ndarray
    sample_rate_hz: float
    num_chips: int

    @property
    def duration_s(self) -> float:
        """Waveform duration in seconds."""
        return self.samples.size / self.sample_rate_hz


class OqpskModulator:
    """Half-sine O-QPSK modulator.

    Parameters
    ----------
    samples_per_chip:
        Oversampling factor (must be even so the one-chip Q offset is an
        integer number of samples at half-chip resolution).
    """

    def __init__(self, samples_per_chip: int = 4) -> None:
        if samples_per_chip < 2 or samples_per_chip % 2 != 0:
            raise ConfigurationError("samples_per_chip must be an even number >= 2")
        self.samples_per_chip = samples_per_chip

    @property
    def sample_rate_hz(self) -> float:
        """Output sample rate."""
        return CHIP_RATE_HZ * self.samples_per_chip

    def modulate(self, chips: np.ndarray) -> OqpskWaveform:
        """Modulate a chip sequence (0/1 values) into an O-QPSK waveform."""
        arr = as_bit_array(chips)
        if arr.size % 2 != 0:
            raise ConfigurationError("chip count must be even (I/Q pairs)")
        levels = 2.0 * arr.astype(float) - 1.0
        i_chips = levels[0::2]
        q_chips = levels[1::2]
        spc = self.samples_per_chip
        # Each rail chip occupies two chip periods with half-sine shaping.
        pulse = np.sin(np.pi * np.arange(2 * spc) / (2 * spc))
        rail_length = (arr.size + 2) * spc
        i_rail = np.zeros(rail_length)
        q_rail = np.zeros(rail_length)
        for index, level in enumerate(i_chips):
            start = index * 2 * spc
            i_rail[start : start + 2 * spc] += level * pulse
        for index, level in enumerate(q_chips):
            start = index * 2 * spc + spc  # one chip-period offset
            q_rail[start : start + 2 * spc] += level * pulse
        samples = i_rail + 1j * q_rail
        return OqpskWaveform(
            samples=samples, sample_rate_hz=self.sample_rate_hz, num_chips=arr.size
        )


class OqpskDemodulator:
    """Matched-filter O-QPSK demodulator recovering hard chips."""

    def __init__(self, samples_per_chip: int = 4) -> None:
        if samples_per_chip < 2 or samples_per_chip % 2 != 0:
            raise ConfigurationError("samples_per_chip must be an even number >= 2")
        self.samples_per_chip = samples_per_chip

    def demodulate(self, waveform: OqpskWaveform, num_chips: int | None = None) -> np.ndarray:
        """Recover the chip sequence by sampling each rail at its pulse peak."""
        spc = self.samples_per_chip
        total = waveform.num_chips if num_chips is None else num_chips
        samples = waveform.samples
        chips = np.zeros(total, dtype=np.uint8)
        for pair_index in range(total // 2):
            i_peak = pair_index * 2 * spc + spc  # centre of the I pulse
            q_peak = pair_index * 2 * spc + 2 * spc  # centre of the Q pulse
            if q_peak >= samples.size:
                break
            chips[2 * pair_index] = 1 if samples[i_peak].real > 0 else 0
            if 2 * pair_index + 1 < total:
                chips[2 * pair_index + 1] = 1 if samples[q_peak].imag > 0 else 0
        return chips
