"""802.15.4 PHY frame format: preamble, SFD, length and MAC frame with FCS.

A PHY protocol data unit (PPDU) is::

    preamble (4 zero bytes) | SFD (0xA7) | length (7 bits) | PSDU (≤127 bytes)

The PSDU (MAC frame) ends with a CRC-16 frame check sequence.  The paper's
§4.5 experiment only needs packets a commodity CC2531 will accept, i.e. a
valid PPDU with correct FCS.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.exceptions import CrcError, PacketFormatError
from repro.utils.bits import bytes_to_bits
from repro.utils.crc import crc16_ccitt

__all__ = [
    "PREAMBLE_BYTES",
    "SFD_BYTE",
    "MAX_PSDU_BYTES",
    "ZigbeeFrame",
    "build_phy_frame",
    "parse_phy_frame",
]

#: Four zero bytes of preamble.
PREAMBLE_BYTES = b"\x00\x00\x00\x00"

#: Start-of-frame delimiter.
SFD_BYTE = 0xA7

#: Maximum PSDU size.
MAX_PSDU_BYTES = 127


@dataclass
class ZigbeeFrame:
    """A minimal 802.15.4 data frame.

    Attributes
    ----------
    payload:
        MAC payload bytes.
    sequence_number:
        MAC sequence number (0-255).
    pan_id / destination / source:
        16-bit short addressing fields.
    """

    payload: bytes
    sequence_number: int = 0
    pan_id: int = 0x1A62
    destination: int = 0xFFFF
    source: int = 0x0001

    def __post_init__(self) -> None:
        if not 0 <= self.sequence_number <= 255:
            raise PacketFormatError("sequence number must fit in one byte")
        if len(self.payload) > MAX_PSDU_BYTES - 11:
            raise PacketFormatError("payload too large for one 802.15.4 frame")

    def mac_frame(self) -> bytes:
        """MAC header + payload + FCS (the PSDU)."""
        frame_control = (0x8841).to_bytes(2, "little")  # data frame, short addrs, intra-PAN
        header = (
            frame_control
            + bytes([self.sequence_number])
            + self.pan_id.to_bytes(2, "little")
            + self.destination.to_bytes(2, "little")
            + self.source.to_bytes(2, "little")
        )
        body = header + self.payload
        fcs = crc16_ccitt.compute(bytes_to_bits(body))
        return body + fcs.to_bytes(2, "little")

    @classmethod
    def parse(cls, psdu: bytes) -> "ZigbeeFrame":
        """Parse a PSDU back into a frame, verifying the FCS."""
        if len(psdu) < 11:
            raise PacketFormatError(f"PSDU too short: {len(psdu)} bytes")
        body, fcs_bytes = psdu[:-2], psdu[-2:]
        expected = crc16_ccitt.compute(bytes_to_bits(body))
        if int.from_bytes(fcs_bytes, "little") != expected:
            raise CrcError("802.15.4 FCS check failed")
        return cls(
            payload=body[9:],
            sequence_number=body[2],
            pan_id=int.from_bytes(body[3:5], "little"),
            destination=int.from_bytes(body[5:7], "little"),
            source=int.from_bytes(body[7:9], "little"),
        )


def build_phy_frame(psdu: bytes) -> bytes:
    """Wrap a PSDU in the PHY preamble, SFD and length byte."""
    if not psdu:
        raise PacketFormatError("PSDU must not be empty")
    if len(psdu) > MAX_PSDU_BYTES:
        raise PacketFormatError(f"PSDU limited to {MAX_PSDU_BYTES} bytes, got {len(psdu)}")
    return PREAMBLE_BYTES + bytes([SFD_BYTE, len(psdu)]) + psdu


def parse_phy_frame(ppdu: bytes) -> bytes:
    """Extract the PSDU from a PPDU, validating preamble, SFD and length."""
    if len(ppdu) < 7:
        raise PacketFormatError("PPDU too short")
    if ppdu[:4] != PREAMBLE_BYTES:
        raise PacketFormatError("bad 802.15.4 preamble")
    if ppdu[4] != SFD_BYTE:
        raise PacketFormatError(f"bad SFD 0x{ppdu[4]:02X}")
    length = ppdu[5] & 0x7F
    if len(ppdu) < 6 + length:
        raise PacketFormatError("PPDU truncated")
    return ppdu[6 : 6 + length]
