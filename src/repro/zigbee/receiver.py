"""802.15.4 receiver: O-QPSK demodulation, chip correlation and FCS check.

Models the commodity TI CC2531 the paper uses to receive backscatter-
generated ZigBee packets (§4.5), including an RSSI estimate and the
chip-error statistics used to reason about sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodeError, PacketFormatError
from repro.utils.dsp import signal_power, watts_to_dbm
from repro.zigbee.chips import CHIPS_PER_SYMBOL, chips_to_symbol
from repro.zigbee.oqpsk import OqpskDemodulator, OqpskWaveform
from repro.zigbee.packet import ZigbeeFrame, parse_phy_frame

__all__ = ["ZigbeeDecodeResult", "ZigbeeReceiver"]


@dataclass(frozen=True)
class ZigbeeDecodeResult:
    """Outcome of decoding one 802.15.4 packet.

    Attributes
    ----------
    psdu:
        Decoded PSDU bytes.
    frame:
        Parsed MAC frame when the FCS verified, else ``None``.
    crc_ok:
        Whether the FCS verified.
    rssi_dbm:
        Received signal strength estimate.
    mean_chip_errors:
        Average Hamming distance per 32-chip symbol (decode quality metric).
    """

    psdu: bytes
    frame: ZigbeeFrame | None
    crc_ok: bool
    rssi_dbm: float
    mean_chip_errors: float


class ZigbeeReceiver:
    """Chip-correlating 802.15.4 receiver."""

    def __init__(self, samples_per_chip: int = 4) -> None:
        self._demodulator = OqpskDemodulator(samples_per_chip)

    def decode_chips(self, chips: np.ndarray, *, rssi_dbm: float = -50.0) -> ZigbeeDecodeResult:
        """Decode a packet from a hard chip stream starting at chip 0."""
        chips = np.asarray(chips).ravel()
        if chips.size < 12 * CHIPS_PER_SYMBOL:
            raise DecodeError("chip stream shorter than the PHY header")
        num_symbols = chips.size // CHIPS_PER_SYMBOL
        symbols = np.zeros(num_symbols, dtype=np.uint8)
        distances = np.zeros(num_symbols)
        for index in range(num_symbols):
            symbol, distance = chips_to_symbol(
                chips[index * CHIPS_PER_SYMBOL : (index + 1) * CHIPS_PER_SYMBOL]
            )
            symbols[index] = symbol
            distances[index] = distance
        data = bytes(
            int(symbols[2 * i]) | (int(symbols[2 * i + 1]) << 4) for i in range(num_symbols // 2)
        )
        try:
            psdu = parse_phy_frame(data)
        except PacketFormatError as exc:
            raise DecodeError(f"PHY frame parse failed: {exc}") from exc
        crc_ok = True
        frame: ZigbeeFrame | None
        try:
            frame = ZigbeeFrame.parse(psdu)
        except Exception:
            frame = None
            crc_ok = False
        return ZigbeeDecodeResult(
            psdu=psdu,
            frame=frame,
            crc_ok=crc_ok,
            rssi_dbm=float(rssi_dbm),
            mean_chip_errors=float(np.mean(distances)),
        )

    def decode_waveform(self, waveform: OqpskWaveform) -> ZigbeeDecodeResult:
        """Demodulate an O-QPSK waveform and decode the packet within."""
        chips = self._demodulator.demodulate(waveform)
        rssi = watts_to_dbm(signal_power(waveform.samples))
        return self.decode_chips(chips, rssi_dbm=rssi)
