"""802.15.4 transmitter: bytes → symbols → chips → O-QPSK waveform."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.zigbee.chips import CHIPS_PER_SYMBOL, symbol_to_chips
from repro.zigbee.oqpsk import CHIP_RATE_HZ, OqpskModulator, OqpskWaveform
from repro.zigbee.packet import ZigbeeFrame, build_phy_frame

__all__ = ["ZigbeePacketWaveform", "ZigbeeTransmitter", "ZIGBEE_BIT_RATE_BPS", "bytes_to_chips"]

#: 802.15.4 2.4 GHz data rate.
ZIGBEE_BIT_RATE_BPS = 250_000.0


def bytes_to_chips(data: bytes) -> np.ndarray:
    """Spread bytes into the 32-chip-per-nibble DSSS chip stream.

    The low nibble of each byte is transmitted first (IEEE 802.15.4-2011
    §10.3.2).
    """
    chips: list[np.ndarray] = []
    for byte in data:
        chips.append(symbol_to_chips(byte & 0x0F))
        chips.append(symbol_to_chips((byte >> 4) & 0x0F))
    if not chips:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(chips)


@dataclass(frozen=True)
class ZigbeePacketWaveform:
    """Baseband output of the ZigBee transmitter.

    Attributes
    ----------
    waveform:
        O-QPSK complex baseband waveform.
    chips:
        The chip stream that was modulated.
    ppdu:
        The PHY frame bytes.
    psdu:
        The MAC frame (PSDU) bytes inside the PPDU.
    """

    waveform: OqpskWaveform
    chips: np.ndarray
    ppdu: bytes
    psdu: bytes

    @property
    def duration_s(self) -> float:
        """Packet air time."""
        return self.waveform.duration_s


class ZigbeeTransmitter:
    """802.15.4 2.4 GHz O-QPSK packet encoder."""

    def __init__(self, samples_per_chip: int = 4) -> None:
        self._modulator = OqpskModulator(samples_per_chip)

    @property
    def sample_rate_hz(self) -> float:
        """Sample rate of the emitted waveforms."""
        return self._modulator.sample_rate_hz

    def encode_frame(self, frame: ZigbeeFrame) -> ZigbeePacketWaveform:
        """Encode a data frame into a complete PPDU waveform."""
        return self.encode_psdu(frame.mac_frame())

    def encode_psdu(self, psdu: bytes) -> ZigbeePacketWaveform:
        """Encode raw PSDU bytes into a PPDU waveform."""
        ppdu = build_phy_frame(psdu)
        chips = bytes_to_chips(ppdu)
        waveform = self._modulator.modulate(chips)
        return ZigbeePacketWaveform(waveform=waveform, chips=chips, ppdu=ppdu, psdu=psdu)

    def air_time_s(self, psdu_length_bytes: int) -> float:
        """Air time of a packet with the given PSDU length."""
        ppdu_bytes = 6 + psdu_length_bytes
        chips = ppdu_bytes * 2 * CHIPS_PER_SYMBOL
        return chips / CHIP_RATE_HZ
