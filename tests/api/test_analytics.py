"""Tests for cross-campaign analytics (Frame, replicate groups, aggregate)."""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.api import (
    Frame,
    ResultStore,
    Result,
    Runner,
    SweepSpec,
    aggregate,
    mean_std_ci,
    payload_equal,
    replicate_groups,
)
from repro.exceptions import ConfigurationError


class TestFrame:
    def test_numeric_columns_become_numpy(self):
        frame = Frame({"a": [1.0, 2.0], "n": [3, 4], "label": ["x", "y"]})
        assert isinstance(frame.column("a"), np.ndarray)
        assert frame.column("a").dtype == np.float64
        assert frame.column("n").dtype == np.int64
        assert frame.column("label") == ["x", "y"]

    def test_rows_unwrap_numpy_scalars(self):
        frame = Frame({"a": np.array([1.5]), "b": ["x"]})
        rows = frame.rows()
        assert rows == [{"a": 1.5, "b": "x"}]
        assert type(rows[0]["a"]) is float

    def test_json_roundtrip_preserves_equality(self):
        frame = Frame({"a": np.array([1.0, math.nan]), "b": ["x", "y"], "n": [1, 2]})
        restored = Frame.from_dict(frame.to_dict())
        assert frame.equals(restored)
        assert restored.column_names == ["a", "b", "n"]

    def test_unequal_column_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="rows"):
            Frame({"a": [1.0], "b": [1.0, 2.0]})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(ConfigurationError, match="1-D"):
            Frame({"a": np.zeros((2, 2))})

    def test_unknown_column_lookup_names_available(self):
        with pytest.raises(ConfigurationError, match="available"):
            Frame({"a": [1.0]}).column("b")

    def test_empty_frame(self):
        frame = Frame({"a": [], "b": []})
        assert frame.num_rows == 0
        assert len(frame) == 0
        assert frame.rows() == []


class TestMeanStdCi:
    def test_hand_computed_three_samples(self):
        mean, std, half, n = mean_std_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        # t(0.975, df=2) = 4.3027; half = t * 1 / sqrt(3)
        assert half == pytest.approx(4.302652 / math.sqrt(3), rel=1e-4)
        assert n == 3

    def test_single_sample_degenerates_to_point(self):
        assert mean_std_ci([5.0]) == (5.0, 0.0, 0.0, 1)

    def test_nan_samples_excluded(self):
        mean, std, half, n = mean_std_ci([1.0, math.nan, 3.0])
        assert mean == pytest.approx(2.0)
        assert n == 2

    def test_all_nan_gives_nan(self):
        mean, std, half, n = mean_std_ci([math.nan, math.nan])
        assert math.isnan(mean) and math.isnan(std) and math.isnan(half)
        assert n == 0


@pytest.fixture(scope="module")
def replicated_store(tmp_path_factory):
    """A store with 2 grid points × 3 seed-replicates of fig17 (batch engine)."""
    store = ResultStore(tmp_path_factory.mktemp("agg-store"))
    sweep = SweepSpec(
        experiment="fig17",
        grid={"phone_power_dbm": [6.0, 10.0]},
        params={"messages_per_point": 10, "step_inches": 8.0},
        engine="batch",
        seed=17,
        replicates=3,
    )
    Runner().run_batch(sweep.expand(), store=store)
    return store


class TestReplicateGroups:
    def test_groups_by_params_minus_seed(self, replicated_store):
        groups = replicate_groups(replicated_store.query("fig17"))
        assert len(groups) == 2
        for group in groups:
            assert group.replicates == 3
            assert len(set(group.seeds)) == 3
            assert "seed" not in group.params

    def test_group_order_is_deterministic(self, replicated_store):
        results = replicated_store.query("fig17")
        first = [g.params["phone_power_dbm"] for g in replicate_groups(results)]
        second = [g.params["phone_power_dbm"] for g in replicate_groups(list(reversed(results)))]
        assert first == second


class TestAggregate:
    def test_mean_ci_frame_over_replicates(self, replicated_store):
        frame = aggregate(replicated_store, "fig17", group_by=["phone_power_dbm"])
        assert frame.num_rows == 2
        assert list(frame.column("replicates")) == [3, 3]
        assert frame.column("engines") == ["batch", "batch"]
        assert "usable_range_inches_mean" in frame.column_names
        assert "usable_range_inches_std" in frame.column_names
        assert "usable_range_inches_ci95" in frame.column_names
        # Every half-width is finite and non-negative with 3 replicates.
        assert np.all(frame.column("usable_range_inches_ci95") >= 0.0)
        assert np.all(np.isfinite(frame.column("mean_measured_ber_mean")))

    def test_matches_hand_computed_mean(self, replicated_store):
        results = replicated_store.query("fig17", phone_power_dbm=6.0)
        expected = np.mean([r.payload.usable_range_inches for r in results])
        frame = aggregate(replicated_store, "fig17", group_by=["phone_power_dbm"])
        index = list(frame.column("phone_power_dbm")).index(6.0)
        assert frame.column("usable_range_inches_mean")[index] == pytest.approx(expected)

    def test_aggregation_is_deterministic(self, replicated_store):
        first = aggregate(replicated_store, "fig17", group_by=["phone_power_dbm"])
        second = aggregate(replicated_store, "fig17", group_by=["phone_power_dbm"])
        assert first.equals(second)

    def test_single_replicate_ci_degenerates_to_point(self, tmp_path):
        store = ResultStore(tmp_path)
        Runner().run_batch(
            [spec for spec in SweepSpec(experiment="table_power").expand()], store=store
        )
        frame = aggregate(store, "table_power")
        assert frame.num_rows == 1
        assert frame.column("replicates")[0] == 1
        assert frame.column("energy_per_bit_nj_std")[0] == 0.0
        assert frame.column("energy_per_bit_nj_ci95")[0] == 0.0

    def test_mixed_engines_at_one_grid_point(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner()
        params = {"messages_per_point": 10, "step_inches": 8.0}
        store.append(runner.run("fig17", params=dict(params), engine="scalar", seed=17))
        store.append(runner.run("fig17", params=dict(params), engine="batch", seed=18))
        frame = aggregate(store, "fig17")
        assert frame.num_rows == 1
        assert frame.column("replicates")[0] == 2
        assert frame.column("engines") == ["batch,scalar"]

    def test_nan_metric_samples_are_excluded(self, tmp_path):
        store = ResultStore(tmp_path)
        result = Runner().run("table_power")
        store.append(result)
        store.append(replace(result, seed=1))

        calls = iter([math.nan, 2.0])

        def reduce(payload):
            return {"metric": next(calls)}

        frame = aggregate(store, "table_power", reduce=reduce)
        assert frame.column("metric_mean")[0] == pytest.approx(2.0)
        assert frame.column("metric_std")[0] == 0.0

    def test_heterogeneous_group_rejected(self, replicated_store):
        # Without group_by the two phone_power_dbm grid points would pool
        # into one fake "replicate" set; aggregate refuses instead.
        with pytest.raises(ConfigurationError, match=r"phone_power_dbm.*not seed-replicates"):
            aggregate(replicated_store, "fig17")

    def test_partially_recorded_parameter_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = Runner()
        store.append(runner.run("fig17", params={"messages_per_point": 10, "step_inches": 8.0}, seed=1))
        store.append(runner.run("fig17", params={"step_inches": 8.0}, seed=2))  # default messages
        with pytest.raises(ConfigurationError, match="messages_per_point"):
            aggregate(store, "fig17")

    def test_empty_store_yields_empty_frame(self, tmp_path):
        frame = aggregate(ResultStore(tmp_path), "fig17", group_by=["phone_power_dbm"])
        assert frame.num_rows == 0
        assert frame.column_names == ["phone_power_dbm", "replicates", "engines"]

    def test_scalar_reduce_gets_value_column(self, replicated_store):
        frame = aggregate(
            replicated_store,
            "fig17",
            group_by=["phone_power_dbm"],
            reduce=lambda payload: payload.usable_range_inches,
        )
        assert "value_mean" in frame.column_names

    def test_unknown_group_by_parameter_rejected(self, replicated_store):
        with pytest.raises(ConfigurationError, match="no such parameter"):
            aggregate(replicated_store, "fig17", group_by=["no_such_param"])

    def test_missing_metrics_hook_requires_reduce(self, tmp_path):
        from repro.api.registry import _REGISTRY, get_experiment

        experiment = get_experiment("fig17")
        _REGISTRY["fig17"] = replace(experiment, metrics=None)
        try:
            with pytest.raises(ConfigurationError, match="metrics hook"):
                aggregate(ResultStore(tmp_path), "fig17")
        finally:
            _REGISTRY["fig17"] = experiment

    def test_non_scalar_metric_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(Runner().run("table_power"))
        with pytest.raises(ConfigurationError, match="not a scalar"):
            aggregate(store, "table_power", reduce=lambda payload: {"bad": [1, 2]})

    def test_results_iterable_accepted_directly(self, replicated_store):
        results = replicated_store.query("fig17")
        frame = aggregate(results, "fig17", group_by=["phone_power_dbm"])
        assert frame.num_rows == 2
        assert payload_equal(
            frame.column("usable_range_inches_mean"),
            aggregate(replicated_store, "fig17", group_by=["phone_power_dbm"]).column(
                "usable_range_inches_mean"
            ),
        )


def _result_with(experiment: str, seed: int | None, engine: str = "scalar", **params) -> Result:
    return Result(experiment=experiment, engine=engine, seed=seed, params=params, payload=None)


class TestReplicateGroupShape:
    def test_deterministic_runs_form_singleton_groups(self):
        groups = replicate_groups([_result_with("fig06", None), _result_with("fig06", None, x=1.0)])
        assert [g.replicates for g in groups] == [1, 1]
        assert all(g.seeds == (None,) for g in groups)

    def test_members_ordered_by_seed(self):
        groups = replicate_groups(
            [_result_with("fig17", 9), _result_with("fig17", 1), _result_with("fig17", 5)]
        )
        assert len(groups) == 1
        assert groups[0].seeds == (1, 5, 9)
