"""Tests for array-backend threading: spec → Runner → envelope → store → CLI."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentSpec, Result, ResultStore, Runner, payload_equal
from repro.api.analytics import replicate_groups
from repro.api.campaign import SweepSpec
from repro.api.cli import main
from repro.api.store import result_key
from repro.exceptions import ConfigurationError
from repro.mc.backend import ENV_VAR

STRICT = "array-api-strict"
FIG14_FAST = {"packets_per_location": 5}


class TestEnvelopeRoundTrip:
    def test_backend_survives_json_round_trip(self):
        result = Runner().run("fig14", engine="batch", backend=STRICT, params=FIG14_FAST)
        assert result.backend == STRICT
        restored = Result.from_json(result.to_json())
        assert restored.backend == STRICT
        assert result_key(restored) == result_key(result)

    def test_legacy_document_without_backend_decodes_as_none(self):
        result = Runner().run("table_power")
        document = result.to_dict()
        del document["backend"]
        assert Result.from_dict(document).backend is None

    def test_backend_is_result_key_provenance(self):
        numpy_run = Runner().run("fig14", engine="batch", backend="numpy", params=FIG14_FAST)
        strict_run = Runner().run("fig14", engine="batch", backend=STRICT, params=FIG14_FAST)
        assert result_key(numpy_run) != result_key(strict_run)
        # …but numpy remains the reference: the payloads are identical.
        assert payload_equal(numpy_run.payload, strict_run.payload)

    def test_store_keeps_backends_as_distinct_invocations(self, tmp_path):
        store = ResultStore(tmp_path)
        for backend in ("numpy", STRICT):
            store.append(Runner().run("fig14", engine="batch", backend=backend, params=FIG14_FAST))
        assert len(store) == 2
        strict_only = store.query("fig14", backend=STRICT)
        assert [r.backend for r in strict_only] == [STRICT]


class TestSpecValidation:
    def test_spec_round_trips_backend(self):
        spec = ExperimentSpec("fig14", engine="batch", backend=STRICT)
        assert ExperimentSpec.from_dict(spec.to_dict()).backend == STRICT

    def test_backend_in_params_rejected(self):
        spec = ExperimentSpec("fig14", params={"backend": STRICT})
        with pytest.raises(ConfigurationError, match="ExperimentSpec.backend"):
            spec.resolve()

    def test_backend_on_non_backend_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="does not accept an array backend"):
            ExperimentSpec("table_power", backend=STRICT).resolve()

    def test_sweep_round_trips_backend(self):
        sweep = SweepSpec("fig14", grid={"packets_per_location": [5, 10]}, backend=STRICT)
        restored = SweepSpec.from_dict(sweep.to_dict())
        assert restored.backend == STRICT
        assert all(spec.backend == STRICT for spec in restored.expand())

    def test_sweep_backend_reserved_in_grid(self):
        with pytest.raises(ConfigurationError, match="backend"):
            SweepSpec("fig14", grid={"backend": ["numpy", STRICT]}).resolve()

    def test_sweep_backend_on_non_backend_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="takes none"):
            SweepSpec("fig06", grid={}, backend=STRICT).resolve()


class TestRunnerResolution:
    def test_acceptance_fig14_strict_matches_numpy_exactly(self):
        """The PR's acceptance criterion: fig14 batch is float-identical across backends."""
        numpy_run = Runner().run("fig14", engine="batch", backend="numpy", params=FIG14_FAST)
        strict_run = Runner().run("fig14", engine="batch", backend=STRICT, params=FIG14_FAST)
        assert payload_equal(numpy_run.payload, strict_run.payload)

    def test_default_records_numpy_explicitly(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        result = Runner().run("fig14", engine="batch", params=FIG14_FAST)
        assert result.backend == "numpy"

    def test_env_var_picks_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, STRICT)
        result = Runner().run("fig14", engine="batch", params=FIG14_FAST)
        assert result.backend == STRICT

    def test_spec_backend_beats_runner_backend(self):
        runner = Runner(backend="numpy")
        spec = ExperimentSpec("fig14", engine="batch", backend=STRICT, params=FIG14_FAST)
        assert runner.run(spec).backend == STRICT

    def test_non_backend_experiment_never_records_backend(self):
        assert Runner().run("table_power").backend is None

    def test_backend_on_non_backend_experiment_raises(self):
        with pytest.raises(ConfigurationError, match="does not accept an array backend"):
            Runner().run("table_power", backend=STRICT)

    def test_unknown_backend_aborts_before_work(self):
        with pytest.raises(ConfigurationError, match="warp-drive"):
            Runner().run("fig14", engine="batch", backend="warp-drive", params=FIG14_FAST)


class TestCli:
    def test_backends_verb_lists_registry(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out and STRICT in out
        assert "* default backend" in out

    def test_backends_verb_json(self, capsys):
        assert main(["backends", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert by_name["numpy"]["default"] is True
        assert STRICT in by_name

    def test_run_with_backend_flag_records_it(self, tmp_path, capsys):
        out_path = tmp_path / "fig14.json"
        code = main(
            ["run", "fig14", "--engine", "batch", "--backend", STRICT]
            + ["--set", "packets_per_location=5", "--json", str(out_path)]
        )
        assert code == 0
        assert json.loads(out_path.read_text())["backend"] == STRICT

    def test_run_with_unknown_backend_fails_cleanly(self, capsys):
        assert main(["run", "fig14", "--engine", "batch", "--backend", "warp-drive"]) == 1
        assert "unknown array backend" in capsys.readouterr().err

    def test_info_lists_backends_for_capable_experiments(self, capsys):
        assert main(["info", "fig14"]) == 0
        assert "backends:" in capsys.readouterr().out


class TestAnalytics:
    def test_replicate_groups_split_by_backend(self):
        results = [
            Runner(seed=seed).run("fig14", engine="batch", backend=backend, params=FIG14_FAST)
            for backend in ("numpy", STRICT)
            for seed in (1, 2)
        ]
        groups = replicate_groups(results)
        assert sorted(group.backend for group in groups) == [STRICT, "numpy"]
        assert all(group.replicates == 2 for group in groups)
