"""Tests for declarative sweep campaigns (SweepSpec, seed derivation, grids)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, SweepSpec, derive_seed, load_specs, read_specs
from repro.exceptions import ConfigurationError

GRIDS = Path(__file__).resolve().parents[2] / "examples" / "grids"


def _small_sweep(**overrides) -> SweepSpec:
    settings = dict(
        experiment="fig17",
        grid={"phone_power_dbm": [6.0, 10.0], "step_inches": [4.0, 8.0]},
        params={"messages_per_point": 10},
        seed=17,
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestExpansion:
    def test_cartesian_product_size_and_order(self):
        specs = _small_sweep().expand()
        assert len(specs) == 4
        # Outermost grid key varies slowest.
        assert [s.params["phone_power_dbm"] for s in specs] == [6.0, 6.0, 10.0, 10.0]
        assert [s.params["step_inches"] for s in specs] == [4.0, 8.0, 4.0, 8.0]
        for spec in specs:
            assert spec.params["messages_per_point"] == 10
            assert isinstance(spec, ExperimentSpec)

    def test_size_property_matches_expansion(self):
        sweep = _small_sweep(replicates=3)
        assert sweep.size == 12
        assert len(sweep.expand()) == 12

    def test_grid_overrides_base_params(self):
        specs = SweepSpec(
            experiment="fig17", grid={"messages_per_point": [5, 10]}, params={"step_inches": 8.0}, seed=1
        ).expand()
        assert [s.params["messages_per_point"] for s in specs] == [5, 10]

    def test_expansion_is_deterministic(self):
        first = _small_sweep(replicates=2).expand()
        second = _small_sweep(replicates=2).expand()
        assert first == second


class TestSeedDerivation:
    def test_derived_seeds_distinct_per_point_and_replicate(self):
        specs = _small_sweep(replicates=2).expand()
        seeds = [s.seed for s in specs]
        assert len(set(seeds)) == len(seeds)
        assert all(isinstance(seed, int) for seed in seeds)

    def test_derivation_depends_on_content_not_order(self):
        params = {"messages_per_point": 10, "phone_power_dbm": 6.0}
        reordered = {"phone_power_dbm": 6.0, "messages_per_point": 10}
        assert derive_seed(17, "fig17", params) == derive_seed(17, "fig17", reordered)
        assert derive_seed(17, "fig17", params) != derive_seed(18, "fig17", params)
        assert derive_seed(17, "fig17", params) != derive_seed(17, "fig13", params)
        assert derive_seed(17, "fig17", params, 0) != derive_seed(17, "fig17", params, 1)

    def test_no_base_seed_keeps_driver_defaults(self):
        specs = _small_sweep(seed=None).expand()
        assert all(spec.seed is None for spec in specs)

    def test_deterministic_experiment_gets_no_seed(self):
        specs = SweepSpec(
            experiment="table_packet_sizes", grid={"advertising_interval_s": [0.02, 0.04]}, seed=5
        ).expand()
        assert all(spec.seed is None for spec in specs)


class TestValidation:
    def test_unknown_grid_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            SweepSpec(experiment="fig17", grid={"bogus": [1]}).expand()

    def test_seed_in_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="SweepSpec.seed"):
            SweepSpec(experiment="fig17", grid={"seed": [1, 2]}).expand()

    def test_engine_in_params_rejected(self):
        with pytest.raises(ConfigurationError, match="SweepSpec.engine"):
            SweepSpec(experiment="fig17", params={"engine": "batch"}).expand()

    def test_grid_params_overlap_rejected(self):
        with pytest.raises(ConfigurationError, match="both grid and params"):
            SweepSpec(
                experiment="fig17", grid={"step_inches": [2.0]}, params={"step_inches": 4.0}
            ).expand()

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty sequence"):
            SweepSpec(experiment="fig17", grid={"step_inches": []}).expand()

    def test_string_grid_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty sequence"):
            SweepSpec(experiment="mac_scaling", grid={"profile": "contact_lens"}).expand()

    def test_unsupported_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine not supported"):
            SweepSpec(experiment="fig15", engine="batch").expand()

    def test_replicates_require_seed(self):
        with pytest.raises(ConfigurationError, match="without a"):
            _small_sweep(seed=None, replicates=2).expand()

    def test_replicates_require_seedable_experiment(self):
        with pytest.raises(ConfigurationError, match="deterministic"):
            SweepSpec(experiment="table_power", seed=1, replicates=2).expand()

    def test_nonpositive_replicates_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            _small_sweep(replicates=0).expand()


class TestSerialization:
    def test_dict_roundtrip(self):
        sweep = _small_sweep(engine="batch", replicates=2)
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep

    def test_json_roundtrip(self):
        sweep = _small_sweep()
        restored = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert restored.expand() == sweep.expand()

    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="'gird'"):
            SweepSpec.from_dict({"experiment": "fig17", "gird": {"step_inches": [2.0]}})

    def test_missing_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="experiment"):
            SweepSpec.from_dict({"grid": {"step_inches": [2.0]}})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="object"):
            SweepSpec.from_dict(["fig17"])


class TestSpecFromDictStrictness:
    def test_unknown_key_rejected_by_name(self):
        with pytest.raises(ConfigurationError, match="'sead'"):
            ExperimentSpec.from_dict({"experiment": "fig17", "sead": 1})

    def test_missing_experiment_rejected(self):
        with pytest.raises(ConfigurationError, match="experiment"):
            ExperimentSpec.from_dict({"params": {}})

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError, match="object"):
            ExperimentSpec.from_dict("fig17")


class TestGridDocuments:
    def test_document_with_sweeps_and_specs(self):
        document = {
            "sweeps": [_small_sweep().to_dict()],
            "specs": [{"experiment": "table_power"}],
        }
        specs = load_specs(document)
        assert len(specs) == 5
        assert specs[-1].experiment == "table_power"

    def test_bare_list_mixes_sweeps_and_specs(self):
        specs = load_specs([_small_sweep().to_dict(), {"experiment": "table_power"}])
        assert len(specs) == 5

    def test_single_sweep_object(self):
        assert len(load_specs(_small_sweep().to_dict())) == 4

    def test_single_spec_object(self):
        specs = load_specs({"experiment": "fig13", "engine": "batch"})
        assert specs == [ExperimentSpec(experiment="fig13", engine="batch")]

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigurationError, match="'sweep'"):
            load_specs({"sweep": [], "sweeps": []})

    def test_non_object_document_rejected(self):
        with pytest.raises(ConfigurationError, match="object or list"):
            load_specs("fig17")

    def test_read_specs_roundtrip(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"sweeps": [_small_sweep().to_dict()]}))
        assert read_specs(path) == _small_sweep().expand()

    def test_read_specs_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            read_specs(path)

    def test_read_specs_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            read_specs(tmp_path / "absent.json")

    def test_read_specs_rejects_empty_document(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError, match="zero specs"):
            read_specs(path)

    def test_shipped_fleet_grid_expands_to_100_plus_heterogeneous_specs(self):
        specs = read_specs(GRIDS / "fleet_grid.json")
        assert len(specs) >= 100
        profiles = {spec.params.get("profile", "contact_lens") for spec in specs}
        assert profiles == {"contact_lens", "neural_implant", "card_to_card"}
        assert {spec.engine for spec in specs} == {None, "fast_path", "batched"}
        assert {spec.experiment for spec in specs} == {"mac_scaling", "mac_density"}
        seeds = [spec.seed for spec in specs]
        assert len(set(seeds)) == len(seeds)

    def test_shipped_per_grid_expands(self):
        specs = read_specs(GRIDS / "per_grid.json")
        assert len(specs) == 10
        assert specs[-1].experiment == "fig13"
