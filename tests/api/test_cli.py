"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.api import Result, ResultStore, payload_equal
from repro.api.cli import main
from repro.experiments import fig11_per


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig06", "fig11", "mac_scaling", "table_power"):
            assert name in out

    def test_json_listing_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert len(entries) == 15
        assert by_name["fig11"]["engines"] == ["scalar", "batch"]
        assert by_name["mac_scaling"]["artifact"] is None


class TestInfo:
    def test_info_shows_schema(self, capsys):
        assert main(["info", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "engines: scalar, batch" in out
        assert "num_locations" in out
        assert "seed = 11" in out

    def test_info_unknown_experiment_fails(self, capsys):
        assert main(["info", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_run_writes_envelope_identical_to_direct_call(self, tmp_path, capsys):
        out_path = tmp_path / "fig11.json"
        code = main(
            [
                "run",
                "fig11",
                "--engine",
                "batch",
                "--set",
                "num_locations=10",
                "--set",
                "num_packets=40",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        envelope = Result.from_json(out_path.read_text())
        assert envelope.engine == "batch"
        direct = fig11_per.run(num_locations=10, num_packets=40, engine="batch")
        assert payload_equal(envelope.payload, direct)

    def test_run_prints_summary(self, capsys):
        assert main(["run", "table_power"]) == 0
        out = capsys.readouterr().out
        assert "28 µW" in out or "27.99" in out

    def test_run_all_fast_validates_and_writes_dir(self, tmp_path, capsys):
        code = main(["run", "--all", "--fast", "--validate", "--quiet", "--json-dir", str(tmp_path)])
        assert code == 0
        written = sorted(path.stem for path in tmp_path.glob("*.json"))
        assert len(written) == 15
        for path in tmp_path.glob("*.json"):
            document = json.loads(path.read_text())
            assert document["schema_version"] == 1
            assert document["experiment"] == path.stem

    def test_seed_flag_is_recorded(self, tmp_path):
        out_path = tmp_path / "out.json"
        assert main(["run", "fig13", "--fast", "--seed", "77", "--json", str(out_path)]) == 0
        assert Result.from_json(out_path.read_text()).seed == 77


def _write_grid(tmp_path, *, experiment="fig17", seed=17):
    grid = {
        "sweeps": [
            {
                "experiment": experiment,
                "grid": {"phone_power_dbm": [6.0, 10.0]},
                "params": {"messages_per_point": 10, "step_inches": 8.0},
                "seed": seed,
            }
        ]
    }
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(grid))
    return path


class TestCampaigns:
    def test_specs_run_populates_store(self, tmp_path, capsys):
        grid = _write_grid(tmp_path)
        store_dir = tmp_path / "store"
        assert main(["run", "--specs", str(grid), "--jobs", "2", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign: 2 spec(s), 2 executed, 0 reused" in out
        store = ResultStore(store_dir)
        assert len(store) == 2
        assert len(store.query("fig17")) == 2

    def test_specs_rerun_reuses_store(self, tmp_path, capsys):
        grid = _write_grid(tmp_path)
        store_dir = tmp_path / "store"
        assert main(["run", "--specs", str(grid), "--store", str(store_dir), "--quiet"]) == 0
        assert main(["run", "--specs", str(grid), "--store", str(store_dir), "--quiet"]) == 0
        assert "0 executed, 2 reused" in capsys.readouterr().out
        assert len(ResultStore(store_dir)) == 2

    def test_specs_run_without_store_prints_progress(self, tmp_path, capsys):
        grid = _write_grid(tmp_path)
        assert main(["run", "--specs", str(grid), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "[1/2] fig17 [scalar]" in out
        assert "[2/2]" in out

    def test_all_with_jobs_and_store(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        code = main(["run", "--all", "--fast", "--jobs", "2", "--store", str(store_dir), "--quiet"])
        assert code == 0
        assert len(ResultStore(store_dir)) == 15

    def test_named_run_with_store_appends(self, tmp_path):
        store_dir = tmp_path / "store"
        assert main(["run", "table_power", "--store", str(store_dir), "--quiet"]) == 0
        assert len(ResultStore(store_dir).query("table_power")) == 1

    def test_report_roundtrip_and_check(self, tmp_path, capsys):
        grid = _write_grid(tmp_path)
        store_dir, doc = tmp_path / "store", tmp_path / "EXPERIMENTS.md"
        main(["run", "--specs", str(grid), "--store", str(store_dir), "--quiet"])
        assert main(["report", "--store", str(store_dir), "--output", str(doc)]) == 0
        assert doc.read_text().startswith("# EXPERIMENTS")
        assert main(["report", "--store", str(store_dir), "--output", str(doc), "--check"]) == 0
        doc.write_text(doc.read_text() + "drift\n")
        assert main(["report", "--store", str(store_dir), "--output", str(doc), "--check"]) == 1
        assert "out of date" in capsys.readouterr().err

    def test_report_to_stdout(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        main(["run", "table_power", "--store", str(store_dir), "--quiet"])
        assert main(["report", "--store", str(store_dir), "--output", "-"]) == 0
        assert "# EXPERIMENTS" in capsys.readouterr().out


class TestOverrideParsing:
    def test_json_list_value(self, tmp_path):
        out = tmp_path / "out.json"
        code = main(
            ["run", "mac_scaling", "--fast", "--set", 'macs=["aloha"]', "--set", "duration_s=0.2", "--json", str(out)]
        )
        assert code == 0
        assert Result.from_json(out.read_text()).params["macs"] == ["aloha"]

    def test_json_bool_and_dict_values_parse(self):
        from repro.api.cli import _parse_override

        assert _parse_override("x=true") == ("x", True)
        assert _parse_override("x=null") == ("x", None)
        assert _parse_override('x={"a": [1, 2]}') == ("x", {"a": [1, 2]})

    def test_python_literal_still_accepted(self):
        from repro.api.cli import _parse_override

        assert _parse_override("x=(1, 5)") == ("x", (1, 5))
        assert _parse_override("x=1e-3") == ("x", 0.001)

    def test_bare_word_stays_string(self):
        from repro.api.cli import _parse_override

        assert _parse_override("profile=contact_lens") == ("profile", "contact_lens")

    def test_unparseable_value_raises_clear_error(self):
        import argparse

        from repro.api.cli import _parse_override

        with pytest.raises(argparse.ArgumentTypeError, match="cannot parse value"):
            _parse_override("x=[1, 2")
        with pytest.raises(argparse.ArgumentTypeError, match="cannot parse value"):
            _parse_override("x=")

    def test_unparseable_value_exits_with_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig11", "--set", "x=[1,"])
        assert excinfo.value.code == 2
        assert "cannot parse value" in capsys.readouterr().err


class TestErrors:
    def test_run_without_names_or_all_fails(self, capsys):
        assert main(["run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_with_names_and_all_fails(self):
        assert main(["run", "fig11", "--all"]) == 2

    def test_specs_with_names_fails(self, tmp_path):
        grid = _write_grid(tmp_path)
        assert main(["run", "fig11", "--specs", str(grid)]) == 2

    def test_specs_with_set_fails(self, tmp_path):
        grid = _write_grid(tmp_path)
        assert main(["run", "--specs", str(grid), "--set", "x=1"]) == 2

    def test_specs_with_json_dir_fails(self, tmp_path):
        grid = _write_grid(tmp_path)
        assert main(["run", "--specs", str(grid), "--json-dir", str(tmp_path)]) == 2

    def test_store_with_json_fails(self, tmp_path):
        assert main(["run", "fig11", "--store", str(tmp_path / "s"), "--json", str(tmp_path / "x.json")]) == 2

    def test_bad_jobs_fails(self):
        assert main(["run", "--all", "--jobs", "0"]) == 2

    def test_missing_grid_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "--specs", str(tmp_path / "absent.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_single_json_with_multiple_names_fails(self, tmp_path, capsys):
        assert main(["run", "fig11", "fig13", "--json", str(tmp_path / "x.json")]) == 2

    def test_overrides_with_multiple_names_fail(self):
        assert main(["run", "table_power", "table_packet_sizes", "--set", "x=1"]) == 2

    def test_unsupported_engine_fails_cleanly(self, capsys):
        assert main(["run", "fig15", "--engine", "batch"]) == 1
        assert "engine not supported" in capsys.readouterr().err

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestObservability:
    def _store(self, tmp_path):
        store_dir = tmp_path / "store"
        main(["run", "fig11", "--fast", "--store", str(store_dir), "--quiet"])
        main(["run", "table_power", "--store", str(store_dir), "--quiet"])
        return store_dir

    def test_stats_renders_table_and_counters(self, tmp_path, capsys):
        store_dir = self._store(tmp_path)
        assert main(["stats", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out and "fast-path" in out
        assert "fig11" in out and "table_power" in out
        assert "channel.link_realisations" in out

    def test_stats_experiment_filter_and_json(self, tmp_path, capsys):
        store_dir = self._store(tmp_path)
        capsys.readouterr()  # drain the campaign output
        assert main(["stats", "--store", str(store_dir), "--experiment", "fig11", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert [row["experiment"] for row in document["experiments"]] == ["fig11"]
        assert document["counters"]["channel.link_realisations"] > 0

    def test_stats_unknown_experiment_fails(self, tmp_path, capsys):
        store_dir = self._store(tmp_path)
        assert main(["stats", "--store", str(store_dir), "--experiment", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_stats_empty_store_fails(self, tmp_path, capsys):
        assert main(["stats", "--store", str(tmp_path / "empty")]) == 1
        assert "no matching results" in capsys.readouterr().err

    def test_trace_prints_span_tree(self, capsys):
        assert main(["trace", "fig11", "--fast", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("== Fig. 11")
        assert "run.fig11" in out
        assert "counters:" in out
        assert "channel.link_realisations" in out

    def test_trace_unknown_experiment_fails(self, capsys):
        assert main(["trace", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_merge_reports_stats_per_source(self, tmp_path, capsys):
        left, right = tmp_path / "left", tmp_path / "right"
        main(["run", "table_power", "--store", str(left), "--quiet"])
        main(["run", "table_power", "--store", str(right), "--quiet"])
        main(["run", "fig11", "--fast", "--store", str(right), "--quiet"])
        capsys.readouterr()
        assert main(["merge", str(right), "--into", str(left)]) == 0
        out = capsys.readouterr().out
        assert "1 ingested, 1 deduplicated, 0 torn line(s) skipped" in out
        assert "now holds 2 result(s) (+1)" in out
