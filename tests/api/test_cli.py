"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

from repro.api import Result, payload_equal
from repro.api.cli import main
from repro.experiments import fig11_per


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig06", "fig11", "mac_scaling", "table_power"):
            assert name in out

    def test_json_listing_is_machine_readable(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in entries}
        assert len(entries) == 13
        assert by_name["fig11"]["engines"] == ["scalar", "batch"]
        assert by_name["mac_scaling"]["artifact"] is None


class TestInfo:
    def test_info_shows_schema(self, capsys):
        assert main(["info", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "engines: scalar, batch" in out
        assert "num_locations" in out
        assert "seed = 11" in out

    def test_info_unknown_experiment_fails(self, capsys):
        assert main(["info", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err


class TestRun:
    def test_run_writes_envelope_identical_to_direct_call(self, tmp_path, capsys):
        out_path = tmp_path / "fig11.json"
        code = main(
            [
                "run",
                "fig11",
                "--engine",
                "batch",
                "--set",
                "num_locations=10",
                "--set",
                "num_packets=40",
                "--json",
                str(out_path),
            ]
        )
        assert code == 0
        envelope = Result.from_json(out_path.read_text())
        assert envelope.engine == "batch"
        direct = fig11_per.run(num_locations=10, num_packets=40, engine="batch")
        assert payload_equal(envelope.payload, direct)

    def test_run_prints_summary(self, capsys):
        assert main(["run", "table_power"]) == 0
        out = capsys.readouterr().out
        assert "28 µW" in out or "27.99" in out

    def test_run_all_fast_validates_and_writes_dir(self, tmp_path, capsys):
        code = main(["run", "--all", "--fast", "--validate", "--quiet", "--json-dir", str(tmp_path)])
        assert code == 0
        written = sorted(path.stem for path in tmp_path.glob("*.json"))
        assert len(written) == 13
        for path in tmp_path.glob("*.json"):
            document = json.loads(path.read_text())
            assert document["schema_version"] == 1
            assert document["experiment"] == path.stem

    def test_seed_flag_is_recorded(self, tmp_path):
        out_path = tmp_path / "out.json"
        assert main(["run", "fig13", "--fast", "--seed", "77", "--json", str(out_path)]) == 0
        assert Result.from_json(out_path.read_text()).seed == 77


class TestErrors:
    def test_run_without_names_or_all_fails(self, capsys):
        assert main(["run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_run_with_names_and_all_fails(self):
        assert main(["run", "fig11", "--all"]) == 2

    def test_single_json_with_multiple_names_fails(self, tmp_path, capsys):
        assert main(["run", "fig11", "fig13", "--json", str(tmp_path / "x.json")]) == 2

    def test_overrides_with_multiple_names_fail(self):
        assert main(["run", "table_power", "table_packet_sizes", "--set", "x=1"]) == 2

    def test_unsupported_engine_fails_cleanly(self, capsys):
        assert main(["run", "fig15", "--engine", "batch"]) == 1
        assert "engine not supported" in capsys.readouterr().err

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err
