"""Tests for the central experiment registry."""

from __future__ import annotations

import pytest

from repro.api import experiment_names, get_experiment, iter_experiments, register
from repro.exceptions import ConfigurationError

ALL_EXPERIMENTS = [
    "coded_ofdm",
    "fig06",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "mac_density",
    "mac_scaling",
    "table_packet_sizes",
    "table_power",
]


class TestDiscovery:
    def test_all_fifteen_experiments_registered(self):
        assert sorted(experiment_names()) == sorted(ALL_EXPERIMENTS)

    def test_iter_matches_names(self):
        assert [e.name for e in iter_experiments()] == experiment_names()

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ConfigurationError, match="fig11"):
            get_experiment("fig99")


class TestMetadata:
    def test_batch_engines_declared(self):
        for name in ("fig10", "fig11", "fig13", "fig14", "fig17"):
            experiment = get_experiment(name)
            assert experiment.engine_names == ("scalar", "batch")
            # The capability table carries a real implementation per engine.
            assert all(callable(impl) for impl in experiment.engines.values())

    def test_mac_scaling_declares_fast_path(self):
        assert get_experiment("mac_scaling").engine_names == ("scalar", "fast_path", "batched")

    def test_mac_density_declares_epoch_engines(self):
        experiment = get_experiment("mac_density")
        assert experiment.engine_names == ("batched", "reference")
        assert experiment.default_engine == "batched"

    def test_coded_ofdm_is_batch_only(self):
        experiment = get_experiment("coded_ofdm")
        assert experiment.engine_names == ("batch",)
        assert experiment.default_engine == "batch"

    def test_backend_capability_declared(self):
        for name in ("fig10", "fig11", "fig14", "coded_ofdm"):
            assert get_experiment(name).takes_backend
        for name in ("fig06", "fig13", "fig17", "mac_scaling"):
            assert not get_experiment(name).takes_backend

    def test_scalar_only_experiments(self):
        for name in ("fig06", "fig09", "fig12", "fig15", "fig16", "table_power", "table_packet_sizes"):
            assert get_experiment(name).engine_names == ("scalar",)

    def test_every_experiment_has_title_summary_and_schema(self):
        for experiment in iter_experiments():
            assert experiment.title
            assert experiment.summarize is not None
            assert experiment.parameters
            assert experiment.description

    def test_seed_introspection(self):
        fig11 = get_experiment("fig11")
        assert fig11.takes_seed and fig11.default_seed == 11
        table = get_experiment("table_power")
        assert not table.takes_seed and table.default_seed is None

    def test_paper_artifacts_labelled(self):
        artifacts = {e.name: e.artifact for e in iter_experiments()}
        assert artifacts["fig11"] == "Fig. 11"
        assert artifacts["mac_scaling"] is None

    def test_fast_params_respect_schema(self):
        for experiment in iter_experiments():
            experiment.check_params(experiment.fast_params)


class TestValidation:
    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            get_experiment("fig11").check_params({"bogus": 1})

    def test_duplicate_registration_rejected(self):
        existing = get_experiment("fig11")
        with pytest.raises(ConfigurationError, match="already registered"):
            register(name="fig11", title="dup", run=existing.run)

    def test_unknown_engine_rejected_at_registration(self):
        existing = get_experiment("fig11")
        with pytest.raises(ConfigurationError, match="unknown engines"):
            register(name="brand_new", title="x", run=existing.run, engines=("warp",))

    def test_experiment_is_callable(self):
        result = get_experiment("table_packet_sizes")()
        assert result.max_psdu_bytes[2.0] == 38
