"""Tests for the registry-driven EXPERIMENTS.md report generator."""

from __future__ import annotations

import pytest

from repro.api import (
    ResultStore,
    Runner,
    SweepSpec,
    check_report,
    experiment_names,
    generate_report,
    write_report,
)


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    store = ResultStore(tmp_path_factory.mktemp("report_store"))
    runner = Runner()
    runner.run_batch(
        SweepSpec(
            experiment="fig17",
            grid={"phone_power_dbm": [6.0, 10.0]},
            params={"messages_per_point": 10, "step_inches": 8.0},
            seed=17,
        ).expand(),
        store=store,
    )
    store.append(runner.run("table_power"))
    return store


class TestGenerate:
    def test_covers_every_registered_experiment(self, populated_store):
        text = generate_report(populated_store)
        for name in experiment_names():
            assert f"## {name} — " in text

    def test_present_experiments_show_runs_and_sweeps(self, populated_store):
        text = generate_report(populated_store)
        assert "- runs: 2" in text
        assert "- swept `phone_power_dbm`: 6.0, 10.0" in text
        assert "Measured (scalar engine" in text

    def test_absent_experiments_point_at_the_command(self, populated_store):
        text = generate_report(populated_store)
        assert "python -m repro run fig11 --store <dir>" in text

    def test_deterministic_for_same_store(self, populated_store):
        assert generate_report(populated_store) == generate_report(populated_store)

    def test_excludes_runtime(self, populated_store):
        assert "runtime" not in generate_report(populated_store).lower()


class TestWriteAndCheck:
    def test_write_then_check_is_up_to_date(self, populated_store, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        text = write_report(populated_store, path)
        assert path.read_text() == text
        up_to_date, _ = check_report(populated_store, path)
        assert up_to_date

    def test_missing_file_is_out_of_date(self, populated_store, tmp_path):
        up_to_date, rendered = check_report(populated_store, tmp_path / "absent.md")
        assert not up_to_date
        assert rendered.startswith("# EXPERIMENTS")

    def test_stale_file_is_out_of_date(self, populated_store, tmp_path):
        path = tmp_path / "EXPERIMENTS.md"
        write_report(populated_store, path)
        path.write_text(path.read_text() + "drift\n")
        up_to_date, _ = check_report(populated_store, path)
        assert not up_to_date
