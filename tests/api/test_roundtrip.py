"""Parametrized serialization round-trip suite over every registered experiment.

The ISSUE-level guarantee: every experiment's result envelope serializes via
``to_json``/``from_dict`` to an equal result, and ``Runner(seed=...)`` is
reproducible run-to-run.  Experiments run with their fast smoke parameters
so the whole matrix stays quick.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Result, Runner, experiment_names, get_experiment, payload_equal, validate_result_dict


@pytest.fixture(scope="module")
def fast_results():
    runner = Runner()
    results = {}
    for name in experiment_names():
        experiment = get_experiment(name)
        results[name] = runner.run(name, params=dict(experiment.fast_params))
    return results


@pytest.mark.parametrize("name", experiment_names())
def test_json_roundtrip_is_lossless(name, fast_results):
    result = fast_results[name]
    text = result.to_json()
    restored = Result.from_json(text)
    assert restored.experiment == result.experiment
    assert restored.engine == result.engine
    assert restored.seed == result.seed
    assert payload_equal(restored.params, result.params)
    assert restored.runtime_s == pytest.approx(result.runtime_s)
    assert type(restored.payload) is type(result.payload)
    assert restored.same_payload(result)


@pytest.mark.parametrize("name", experiment_names())
def test_serialized_document_is_strict_json_and_schema_valid(name, fast_results):
    document = json.loads(fast_results[name].to_json())
    validate_result_dict(document)


@pytest.mark.parametrize("name", [n for n in experiment_names() if get_experiment(n).takes_seed])
def test_seeded_runner_is_reproducible(name):
    experiment = get_experiment(name)
    params = dict(experiment.fast_params)
    first = Runner(seed=2016).run(name, params=params)
    second = Runner(seed=2016).run(name, params=params)
    assert first.seed == 2016
    assert payload_equal(first.payload, second.payload)


@pytest.mark.parametrize("name", [n for n in experiment_names() if "batch" in get_experiment(n).engines])
def test_batch_engine_roundtrips_too(name):
    experiment = get_experiment(name)
    result = Runner().run(name, engine="batch", params=dict(experiment.fast_params))
    assert result.engine == "batch"
    assert Result.from_json(result.to_json()).same_payload(result)


def test_summaries_render_for_every_experiment(fast_results):
    for name, result in fast_results.items():
        lines = get_experiment(name).summarize(result.payload)
        assert lines and all(isinstance(line, str) and line for line in lines)
