"""Tests for the engine-dispatching Runner and ExperimentSpec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ExperimentSpec, Runner, payload_equal
from repro.exceptions import ConfigurationError


class TestSeedPolicy:
    def test_driver_default_seed_used_when_unset(self):
        result = Runner().run("fig11", params={"num_locations": 5, "num_packets": 10})
        assert result.seed == 11

    def test_runner_seed_applies_to_seedable_experiments(self):
        result = Runner(seed=321).run("fig11", params={"num_locations": 5, "num_packets": 10})
        assert result.seed == 321

    def test_params_seed_beats_spec_and_runner(self):
        runner = Runner(seed=1)
        spec = ExperimentSpec("fig11", params={"num_locations": 5, "num_packets": 10, "seed": 99})
        assert runner.run(spec).seed == 99

    def test_spec_seed_beats_runner(self):
        runner = Runner(seed=1)
        spec = ExperimentSpec("fig11", params={"num_locations": 5, "num_packets": 10}, seed=42)
        assert runner.run(spec).seed == 42

    def test_deterministic_experiment_records_no_seed(self):
        result = Runner(seed=5).run("table_power")
        assert result.seed is None

    def test_same_seed_is_reproducible(self):
        params = {"num_locations": 8, "num_packets": 20}
        first = Runner(seed=7).run("fig11", params=params)
        second = Runner(seed=7).run("fig11", params=params)
        assert payload_equal(first.payload, second.payload)

    def test_different_seeds_differ(self):
        params = {"num_locations": 8, "num_packets": 20}
        first = Runner(seed=7).run("fig11", params=params)
        second = Runner(seed=8).run("fig11", params=params)
        assert not payload_equal(first.payload, second.payload)


class TestEngineDispatch:
    def test_default_engine_is_scalar(self):
        assert Runner().run("table_power").engine == "scalar"

    def test_batch_engine_dispatches(self):
        result = Runner().run("fig14", engine="batch", params={"packets_per_location": 5})
        assert result.engine == "batch"

    def test_unsupported_engine_raises_not_falls_back(self):
        with pytest.raises(ConfigurationError, match="engine not supported"):
            Runner().run("fig15", engine="batch")

    def test_unsupported_engine_raises_for_tables(self):
        with pytest.raises(ConfigurationError, match="engine not supported"):
            Runner().run("table_power", engine="fast_path")

    def test_runner_level_engine_checked_per_experiment(self):
        runner = Runner(engine="batch")
        assert runner.run("fig11", params={"num_locations": 5, "num_packets": 10}).engine == "batch"
        with pytest.raises(ConfigurationError, match="engine not supported"):
            runner.run("fig12")

    def test_mac_scaling_fast_path(self):
        result = Runner().run(
            "mac_scaling",
            engine="fast_path",
            params={"fleet_sizes": (1, 4), "duration_s": 0.2},
        )
        assert result.engine == "fast_path"
        assert np.all(result.payload.delivery_ratio["tdma"] > 0.0)

    def test_fig10_batch_matches_scalar_exactly(self):
        scalar = Runner().run("fig10", params={"step_feet": 10.0}).payload
        batch = Runner().run("fig10", engine="batch", params={"step_feet": 10.0}).payload
        for key, curve in scalar.curves.items():
            assert np.allclose(curve.rssi_dbm, batch.curves[key].rssi_dbm)
            assert curve.range_feet == batch.curves[key].range_feet


class TestSpecs:
    def test_engine_inside_params_rejected(self):
        with pytest.raises(ConfigurationError, match="params\\['engine'\\]"):
            Runner().run(ExperimentSpec("fig11", params={"engine": "batch"}))

    def test_seed_in_params_and_spec_rejected(self):
        spec = ExperimentSpec("fig11", params={"seed": 1}, seed=2)
        with pytest.raises(ConfigurationError, match="seed given both"):
            Runner().run(spec)

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            Runner().run("fig11", params={"bogus": 1})

    def test_spec_dict_roundtrip(self):
        spec = ExperimentSpec("fig10", params={"step_feet": 10.0}, engine="batch")
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_run_batch_executes_in_order(self):
        specs = [
            ExperimentSpec("table_packet_sizes"),
            ExperimentSpec("fig11", params={"num_locations": 5, "num_packets": 10}, engine="batch"),
        ]
        results = Runner().run_batch(specs)
        assert [r.experiment for r in results] == ["table_packet_sizes", "fig11"]
        assert results[1].engine == "batch"

    def test_run_with_overrides_on_spec(self):
        spec = ExperimentSpec("fig11", params={"num_locations": 5, "num_packets": 10})
        result = Runner().run(spec, engine="batch", seed=123)
        assert result.engine == "batch"
        assert result.seed == 123


class TestRunAll:
    def test_run_all_fast_covers_every_experiment(self):
        results = Runner().run_all(fast=True, names=["table_power", "table_packet_sizes", "fig13"])
        assert sorted(r.experiment for r in results) == ["fig13", "table_packet_sizes", "table_power"]
        for result in results:
            assert result.runtime_s >= 0.0
            assert result.payload is not None

    def test_run_all_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="fig9"):
            Runner().run_all(names=["fig9"])


class TestPlacementHelpers:
    def test_furthest_reach_strict_excludes_exact_threshold(self):
        from repro.api import furthest_reach

        grid = np.array([1.0, 2.0, 3.0])
        values = np.array([0.0, 0.01, 0.5])
        assert furthest_reach(grid, values, 0.01, below=True) == 2.0
        assert furthest_reach(grid, values, 0.01, below=True, strict=True) == 1.0
        assert furthest_reach(grid, values, 0.01, strict=True) == 3.0
        assert furthest_reach(grid, values, 1.0, below=True, strict=True) == 3.0
