"""Unit tests for the JSON-safe payload encoding."""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.api.serialization import decode, encode, payload_equal, validate_encoded
from repro.exceptions import ConfigurationError
from repro.utils.spectrum import PowerSpectrum


def roundtrip(obj):
    text = json.dumps(encode(obj), allow_nan=False)
    return decode(json.loads(text))


class TestScalars:
    def test_plain_values_pass_through(self):
        for value in (None, True, False, 0, -3, "text", 2.5):
            assert roundtrip(value) == value

    def test_non_finite_floats(self):
        assert np.isnan(roundtrip(float("nan")))
        assert roundtrip(float("inf")) == np.inf
        assert roundtrip(float("-inf")) == -np.inf

    def test_numpy_scalars_become_python(self):
        assert roundtrip(np.float64(1.5)) == 1.5
        assert roundtrip(np.int64(7)) == 7
        assert roundtrip(np.bool_(True)) is True

    def test_bytes(self):
        assert roundtrip(b"\x00\xffpayload") == b"\x00\xffpayload"


class TestArrays:
    def test_float_array_exact(self):
        array = np.linspace(-90.0, -50.0, 17)
        restored = roundtrip(array)
        assert restored.dtype == array.dtype
        assert np.array_equal(restored, array)

    def test_array_with_nan_and_inf(self):
        array = np.array([1.0, np.nan, np.inf, -np.inf])
        restored = roundtrip(array)
        assert np.array_equal(restored, array, equal_nan=True)

    def test_int_and_bool_dtypes_preserved(self):
        for array in (np.arange(5, dtype=np.int64), np.array([True, False]), np.arange(4, dtype=np.uint8)):
            restored = roundtrip(array)
            assert restored.dtype == array.dtype
            assert np.array_equal(restored, array)

    def test_complex_array(self):
        array = np.array([1 + 2j, -3.5j, np.nan + 1j])
        restored = roundtrip(array)
        assert restored.dtype == array.dtype
        assert np.array_equal(restored, array, equal_nan=True)

    def test_multidimensional_shape(self):
        array = np.arange(12.0).reshape(3, 4)
        assert roundtrip(array).shape == (3, 4)


class TestContainers:
    def test_tuple_stays_tuple(self):
        assert roundtrip((1, 2.0, "x")) == (1, 2.0, "x")
        assert isinstance(roundtrip((1,)), tuple)

    def test_float_keyed_dict(self):
        mapping = {2.0: "a", 11.0: "b"}
        assert roundtrip(mapping) == mapping

    def test_tuple_keyed_dict(self):
        mapping = {(4.0, 1.0): "curve", (20.0, 3.0): "other"}
        assert roundtrip(mapping) == mapping

    def test_nested_payload_shape(self):
        payload = {"cdf": (np.array([1.0, 2.0]), np.array([0.5, 1.0])), "by_rate": {2.0: np.arange(3)}}
        restored = roundtrip(payload)
        assert payload_equal(restored, payload)

    def test_dict_with_literal_kind_key_roundtrips(self):
        # A real "__kind__" key must not collide with the tag sentinel.
        for mapping in ({"__kind__": "float"}, {"__kind__": "x", "other": 1}):
            assert roundtrip(mapping) == mapping


class TestDataclasses:
    def test_repro_dataclass_roundtrip(self):
        spectrum = PowerSpectrum(frequencies_hz=np.array([-1.0, 0.0, 1.0]), psd=np.array([0.1, 0.9, 0.1]))
        restored = roundtrip(spectrum)
        assert isinstance(restored, PowerSpectrum)
        assert payload_equal(restored, spectrum)

    def test_foreign_dataclass_is_rejected_on_decode(self):
        node = {"__kind__": "dataclass", "type": "os.path.Foo", "fields": {}}
        with pytest.raises(ConfigurationError):
            decode(node)

    def test_unserializable_object_raises(self):
        with pytest.raises(ConfigurationError):
            encode(object())

    def test_local_dataclass_encodes_but_cannot_decode(self):
        @dataclass(frozen=True)
        class Local:
            x: int

        node = encode(Local(x=1))
        with pytest.raises(ConfigurationError):
            decode(node)


class TestPayloadEqual:
    def test_nan_arrays_compare_equal(self):
        assert payload_equal(np.array([np.nan, 1.0]), np.array([np.nan, 1.0]))

    def test_dtype_mismatch_not_equal(self):
        assert not payload_equal(np.array([1.0]), np.array([1]))

    def test_tuple_vs_list_not_equal(self):
        assert not payload_equal((1, 2), [1, 2])

    def test_different_dataclass_types_not_equal(self):
        left = PowerSpectrum(frequencies_hz=np.array([0.0]), psd=np.array([1.0]))
        assert not payload_equal(left, {"frequencies_hz": np.array([0.0])})

    def test_nan_floats_compare_equal(self):
        assert payload_equal(float("nan"), float("nan"))
        assert not payload_equal(float("nan"), 1.0)


class TestValidateEncoded:
    def test_valid_tree_passes(self):
        payload = {"x": (np.arange(3), {2.0: np.nan}), "blob": b"\x01"}
        validate_encoded(encode(payload))

    def test_bad_kind_fails(self):
        with pytest.raises(ConfigurationError, match="unknown node kind"):
            validate_encoded({"__kind__": "mystery"})

    def test_ndarray_missing_data_fails(self):
        with pytest.raises(ConfigurationError, match="ndarray"):
            validate_encoded({"__kind__": "ndarray", "dtype": "float64", "shape": [1]})

    def test_map_with_bad_pair_fails(self):
        with pytest.raises(ConfigurationError, match="map entry"):
            validate_encoded({"__kind__": "map", "items": [[1, 2, 3]]})

    def test_dataclass_outside_repro_fails(self):
        with pytest.raises(ConfigurationError, match="dataclass"):
            validate_encoded({"__kind__": "dataclass", "type": "os.Foo", "fields": {}})
