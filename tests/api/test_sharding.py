"""Shard determinism and resume semantics of the process-sharded Runner.

The campaign contract: the same spec batch produces byte-identical result
payloads no matter how many worker processes execute it, and a killed
partial store merges cleanly on rerun (completed specs are not
re-executed; the final store holds exactly one result per spec).
"""

from __future__ import annotations

import pytest

from repro.api import ResultStore, Runner, SweepSpec, canonical_json
from repro.api.runner import _run_spec_task
from repro.api.store import result_key
from repro.exceptions import ConfigurationError


def _grid_specs():
    """A small but heterogeneous seeded grid (8 specs, two experiments)."""
    fleet = SweepSpec(
        experiment="mac_scaling",
        grid={"macs": [["aloha"], ["tdma"]], "fleet_sizes": [[3], [6]]},
        params={"duration_s": 0.2, "period_s": 0.05},
        seed=2016,
    ).expand()
    per = SweepSpec(
        experiment="fig17",
        grid={"phone_power_dbm": [6.0, 10.0]},
        params={"messages_per_point": 10, "step_inches": 8.0},
        seed=17,
        replicates=2,
    ).expand()
    return fleet + per


def _payload_bytes(results):
    """Sorted canonical JSON of every payload — the byte-identity fingerprint."""
    return sorted(canonical_json(result.payload) for result in results)


class TestShardDeterminism:
    def test_jobs_4_matches_jobs_1_byte_identically(self):
        specs = _grid_specs()
        serial = Runner(jobs=1).run_batch(specs)
        sharded = Runner(jobs=4).run_batch(specs)
        assert _payload_bytes(serial) == _payload_bytes(sharded)
        # Order, seeds and identities survive sharding too, not just the set.
        assert [result_key(r) for r in serial] == [result_key(r) for r in sharded]
        assert [r.seed for r in serial] == [r.seed for r in sharded]

    def test_sharded_stores_hold_identical_content(self, tmp_path):
        specs = _grid_specs()
        Runner(jobs=1).run_batch(specs, store=ResultStore(tmp_path / "serial"))
        Runner(jobs=3).run_batch(specs, store=ResultStore(tmp_path / "sharded"))
        serial = list(ResultStore(tmp_path / "serial").iter_results())
        sharded = list(ResultStore(tmp_path / "sharded").iter_results())
        assert _payload_bytes(serial) == _payload_bytes(sharded)

    def test_worker_task_roundtrips_in_process(self, tmp_path):
        # The worker entry point itself, executed in-process: spec dict in,
        # envelope dict out, shard appended.
        spec = _grid_specs()[0]
        document = _run_spec_task((spec.to_dict(), None, None, None, str(tmp_path), True))
        assert document["experiment"] == "mac_scaling"
        assert document["telemetry"]["counters"]["netsim.events.dispatched"] > 0
        assert len(ResultStore(tmp_path)) == 1

    def test_invalid_spec_aborts_before_any_worker_runs(self, tmp_path):
        from repro.api import ExperimentSpec

        specs = _grid_specs()[:2] + [ExperimentSpec(experiment="fig17", params={"bogus": 1})]
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError, match="bogus"):
            Runner(jobs=4).run_batch(specs, store=store)
        assert len(store) == 0  # validation happens before execution starts

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            Runner(jobs=0)


class TestResume:
    def test_partial_store_not_reexecuted(self, tmp_path):
        specs = _grid_specs()
        store = ResultStore(tmp_path)
        # Simulate a killed campaign: only the first half completed...
        Runner().run_batch(specs[: len(specs) // 2], store=store)
        # ...plus one envelope torn mid-write.
        with open(store.shard_path, "a") as handle:
            handle.write('{"experiment": "mac_sca')
        executed: list[bool] = []
        results = Runner(jobs=2).run_batch(
            specs, store=store, on_result=lambda i, r, cached: executed.append(not cached)
        )
        assert len(results) == len(specs)
        assert executed.count(True) == len(specs) - len(specs) // 2
        assert executed.count(False) == len(specs) // 2
        # Exactly one result per spec, rerun or not.
        assert len(store) == len(specs)
        assert sorted(result_key(r) for r in results) == sorted(store.existing_keys())

    def test_rerun_of_complete_store_executes_nothing(self, tmp_path):
        specs = _grid_specs()[:3]
        store = ResultStore(tmp_path)
        first = Runner().run_batch(specs, store=store)
        executed: list[bool] = []
        second = Runner().run_batch(specs, store=store, on_result=lambda i, r, c: executed.append(not c))
        assert executed == [False, False, False]
        assert _payload_bytes(first) == _payload_bytes(second)

    def test_no_resume_reexecutes_and_dedups_on_read(self, tmp_path):
        specs = _grid_specs()[:2]
        store = ResultStore(tmp_path)
        Runner().run_batch(specs, store=store)
        Runner().run_batch(specs, store=store, resume=False)
        assert len(list(store.iter_documents())) == 4  # both runs appended...
        assert len(store) == 2  # ...but reads collapse to one per invocation

    def test_resume_without_store_runs_everything(self):
        specs = _grid_specs()[:2]
        executed: list[bool] = []
        Runner().run_batch(specs, on_result=lambda i, r, c: executed.append(not c))
        assert executed == [True, True]

    def test_on_result_streams_during_execution(self, monkeypatch):
        # Progress must fire as each spec completes, not after the batch: by
        # the time spec i runs, on_result has already seen specs 0..i-1.
        from repro.api import runner as runner_module

        specs = _grid_specs()[:3]
        seen: list[int] = []
        original = Runner._execute

        def tracking_execute(self, spec):
            tracking_execute.seen_before.append(len(seen))
            return original(self, spec)

        tracking_execute.seen_before = []
        monkeypatch.setattr(runner_module.Runner, "_execute", tracking_execute)
        Runner().run_batch(specs, on_result=lambda i, r, c: seen.append(i))
        assert tracking_execute.seen_before == [0, 1, 2]


class TestRunAllSharded:
    def test_run_all_respects_jobs_and_store(self, tmp_path):
        store = ResultStore(tmp_path)
        results = Runner(jobs=2).run_all(
            fast=True, names=["table_power", "table_packet_sizes", "fig17"], store=store
        )
        assert sorted(r.experiment for r in results) == ["fig17", "table_packet_sizes", "table_power"]
        assert len(store) == 3
