"""Tests for the JSONL ResultStore (sharding, dedup, query, merge)."""

from __future__ import annotations

import json

import pytest

from repro.api import ResultStore, Runner, invocation_key, payload_equal, result_key
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def results():
    """A handful of cheap, distinct results to populate stores with."""
    runner = Runner()
    return [
        runner.run("table_power"),
        runner.run("table_packet_sizes"),
        runner.run("table_packet_sizes", params={"advertising_interval_s": 0.04}),
        runner.run("fig17", params={"messages_per_point": 10, "step_inches": 8.0}, seed=3),
    ]


class TestKeys:
    def test_key_is_stable_and_param_order_independent(self, results):
        result = results[3]
        assert result_key(result) == result_key(result)
        shuffled = dict(reversed(list(result.params.items())))
        assert invocation_key(result.experiment, result.engine, result.seed, shuffled) == result_key(result)

    def test_key_distinguishes_invocations(self, results):
        keys = {result_key(result) for result in results}
        assert len(keys) == len(results)

    def test_key_ignores_payload_and_runtime(self, results):
        from dataclasses import replace

        slower = replace(results[0], runtime_s=999.0)
        assert result_key(slower) == result_key(results[0])


class TestAppendAndIterate:
    def test_roundtrip(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        restored = list(store.iter_results())
        assert len(restored) == len(results)
        for original, decoded in zip(results, restored, strict=True):
            assert decoded.experiment == original.experiment
            assert payload_equal(decoded.payload, original.payload)

    def test_multiple_shards_are_all_read(self, tmp_path, results):
        ResultStore(tmp_path, shard="a.jsonl").append(results[0])
        ResultStore(tmp_path, shard="b.jsonl").append(results[1])
        store = ResultStore(tmp_path)
        assert len(store) == 2
        assert len(store.shard_paths()) == 2

    def test_duplicates_collapse_on_read(self, tmp_path, results):
        store = ResultStore(tmp_path)
        store.append(results[0])
        store.append(results[0])
        assert len(list(store.iter_documents())) == 2
        assert len(list(store.iter_results())) == 1
        assert len(store) == 1

    def test_truncated_trailing_line_is_skipped(self, tmp_path, results):
        store = ResultStore(tmp_path, shard="killed.jsonl")
        store.append(results[0])
        with open(store.shard_path, "a") as handle:
            handle.write(results[1].to_json()[:40])  # a writer died mid-line
        assert len(list(ResultStore(tmp_path).iter_results())) == 1

    def test_shard_name_must_be_bare(self, tmp_path):
        with pytest.raises(ConfigurationError, match="separators"):
            ResultStore(tmp_path, shard="sub/dir.jsonl")

    def test_file_as_store_root_rejected(self, tmp_path):
        path = tmp_path / "not_a_dir"
        path.write_text("occupied")
        with pytest.raises(ConfigurationError, match="is a file"):
            ResultStore(path)

    def test_keyed_documents_match_result_keys(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        keyed = {key for key, _ in store.iter_keyed_documents()}
        assert keyed == {result_key(result) for result in results}

    def test_iter_skips_non_object_lines(self, tmp_path, results):
        store = ResultStore(tmp_path, shard="odd.jsonl")
        store.append(results[0])
        with open(store.shard_path, "a") as handle:
            handle.write("[1, 2]\n\n")
        assert len(list(ResultStore(tmp_path).iter_results())) == 1


class TestQuery:
    def test_query_by_experiment(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        assert len(store.query("table_packet_sizes")) == 2
        assert store.query("fig17")[0].seed == 3

    def test_query_by_param_value(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        matches = store.query("table_packet_sizes", advertising_interval_s=0.04)
        assert len(matches) == 1
        assert matches[0].params["advertising_interval_s"] == 0.04

    def test_query_by_seed_and_engine(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        assert len(store.query(seed=3)) == 1
        assert len(store.query(engine="scalar")) == len(results)

    def test_query_unknown_param_matches_nothing(self, tmp_path, results):
        # Documented default: a filter key an envelope does not record is a
        # silent non-match, not an error (stores mix signatures).
        store = ResultStore(tmp_path)
        store.append(results[0])
        assert store.query(bogus_param=1) == []

    def test_strict_query_raises_on_unknown_filter_key(self, tmp_path, results):
        store = ResultStore(tmp_path)
        store.append(results[2])  # table_packet_sizes(advertising_interval_s=0.04)
        with pytest.raises(ConfigurationError, match=r"bogus_param.*known parameters"):
            store.query("table_packet_sizes", strict=True, bogus_param=1)

    def test_strict_query_tolerates_default_runs(self, tmp_path, results):
        # results[1] ran table_packet_sizes with driver defaults, so the
        # envelope records no parameters; the key is still in the schema,
        # so strict mode treats it as a quiet non-match, not a typo.
        store = ResultStore(tmp_path)
        store.append(results[1])
        assert store.query("table_packet_sizes", strict=True, advertising_interval_s=0.04) == []

    def test_strict_query_with_known_keys_matches_normally(self, tmp_path, results):
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        strict = store.query("table_packet_sizes", strict=True, advertising_interval_s=0.04)
        relaxed = store.query("table_packet_sizes", advertising_interval_s=0.04)
        assert len(strict) == len(relaxed) == 1

    def test_strict_query_only_checks_candidate_envelopes(self, tmp_path, results):
        # fig17 records messages_per_point; table_* results do not, but the
        # experiment filter excludes them before the key check applies.
        store = ResultStore(tmp_path)
        for result in results:
            store.append(result)
        assert len(store.query("fig17", strict=True, messages_per_point=10)) == 1

    def test_strict_query_on_empty_store_raises_nothing(self, tmp_path):
        assert ResultStore(tmp_path).query("fig17", strict=True, bogus_param=1) == []


class TestMerge:
    def test_merge_copies_only_missing(self, tmp_path, results):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        left.append(results[0])
        left.append(results[1])
        right.append(results[1])
        right.append(results[2])
        stats = left.merge(right)
        assert stats.ingested == 1
        assert stats.deduped == 1
        assert stats.torn_lines_skipped == 0
        assert len(left) == 3
        # Merging again is a no-op.
        assert left.merge(right).ingested == 0
        assert len(left) == 3

    def test_merge_accepts_a_path(self, tmp_path, results):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        right.append(results[0])
        assert left.merge(tmp_path / "right").ingested == 1

    def test_merge_counts_torn_lines(self, tmp_path, results):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        right.append(results[0])
        with open(right.shard_path, "a", encoding="utf-8") as handle:
            handle.write('{"experiment": "trunc')  # killed-writer tail
        stats = left.merge(right)
        assert stats.ingested == 1
        assert stats.torn_lines_skipped == 1
