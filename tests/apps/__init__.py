"""Test package marker (keeps same-basename test modules importable)."""
