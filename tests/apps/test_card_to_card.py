"""Tests for the card-to-card communication model (§5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.card_to_card import CARD_PAYLOAD_BITS, BackscatterCard, CardToCardLink
from repro.exceptions import ConfigurationError


class TestCardToCardLink:
    def test_ber_increases_with_separation(self):
        link = CardToCardLink()
        assert link.bit_error_rate(5.0) < link.bit_error_rate(20.0) <= link.bit_error_rate(40.0)

    def test_paper_range_claim(self):
        # §5.3 / Fig. 17: communication works out to ~30 inches at 10 dBm.
        link = CardToCardLink(phone_power_dbm=10.0)
        assert 20.0 <= link.max_range_inches(ber_threshold=0.2) <= 40.0

    def test_receiver_power_monotonic(self):
        link = CardToCardLink()
        assert link.receiver_power_dbm(5.0) > link.receiver_power_dbm(25.0)

    def test_stronger_phone_extends_range(self):
        weak = CardToCardLink(phone_power_dbm=0.0).max_range_inches(ber_threshold=0.2)
        strong = CardToCardLink(phone_power_dbm=10.0).max_range_inches(ber_threshold=0.2)
        assert strong > weak

    def test_send_message_default_payload(self):
        link = CardToCardLink(rng=np.random.default_rng(0))
        result = link.send_message(card_separation_inches=5.0)
        assert result.sent_bits.size == CARD_PAYLOAD_BITS
        assert result.synchronized
        assert result.bit_errors <= 1

    def test_send_message_custom_bits(self):
        link = CardToCardLink(rng=np.random.default_rng(0))
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        result = link.send_message(bits, card_separation_inches=5.0)
        assert result.received_bits.size == bits.size

    def test_far_separation_is_noise(self):
        link = CardToCardLink(rng=np.random.default_rng(0))
        assert link.bit_error_rate(100.0) == pytest.approx(0.5)

    def test_ber_sweep_shape(self):
        link = CardToCardLink()
        sweep = link.ber_sweep(np.array([5.0, 15.0, 30.0]))
        assert sweep.size == 3
        assert np.all(np.diff(sweep) >= 0)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            CardToCardLink(phone_to_transmitter_inches=0.0)
        with pytest.raises(ConfigurationError):
            CardToCardLink().receiver_power_dbm(0.0)

    def test_card_defaults(self):
        card = BackscatterCard()
        assert card.detector_sensitivity_dbm < 0.0
