"""Tests for the smart contact lens application model (§5.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.contact_lens import ContactLensReading, SmartContactLens
from repro.exceptions import ConfigurationError


class TestReading:
    def test_encode_decode_roundtrip(self):
        reading = ContactLensReading(glucose_mmol_per_l=5.7, sequence=12)
        decoded = ContactLensReading.decode(reading.encode())
        assert decoded.sequence == 12
        assert decoded.glucose_mmol_per_l == pytest.approx(5.7, abs=1e-5)

    def test_encoded_size(self):
        assert len(ContactLensReading(5.0, 1).encode()) == 8

    def test_decode_too_short(self):
        with pytest.raises(ConfigurationError):
            ContactLensReading.decode(b"\x00\x01")

    def test_battery_free(self):
        assert ContactLensReading(5.0, 1).battery_free


class TestSmartContactLens:
    def test_rssi_decreases_with_distance(self):
        lens = SmartContactLens(watch_power_dbm=20.0)
        assert lens.rssi_at(6.0) > lens.rssi_at(24.0) > lens.rssi_at(40.0)

    def test_higher_watch_power_helps(self):
        low = SmartContactLens(watch_power_dbm=10.0).rssi_at(20.0)
        high = SmartContactLens(watch_power_dbm=20.0).rssi_at(20.0)
        assert high == pytest.approx(low + 10.0, abs=0.1)

    def test_paper_range_claim_at_20dbm(self):
        # §5.1: ranges of more than 24 inches.
        lens = SmartContactLens(watch_power_dbm=20.0)
        assert lens.max_range_inches() > 24.0

    def test_saline_attenuates(self):
        wet = SmartContactLens(watch_power_dbm=10.0, in_saline=True).rssi_at(12.0)
        dry = SmartContactLens(watch_power_dbm=10.0, in_saline=False).rssi_at(12.0)
        assert dry > wet

    def test_deliver_reading_close_range(self):
        lens = SmartContactLens(watch_power_dbm=20.0, rng=np.random.default_rng(0))
        telemetry = lens.deliver_reading(phone_distance_inches=10.0)
        assert telemetry.delivered
        assert telemetry.packet_error_rate < 0.2
        assert telemetry.energy_uj > 0.0

    def test_delivery_fails_far_away(self):
        lens = SmartContactLens(watch_power_dbm=0.0, rng=np.random.default_rng(0))
        telemetry = lens.deliver_reading(phone_distance_inches=500.0)
        assert not telemetry.delivered

    def test_sequence_increments(self):
        lens = SmartContactLens(rng=np.random.default_rng(0))
        first = lens.sample_glucose()
        second = lens.sample_glucose()
        assert second.sequence == first.sequence + 1

    def test_rssi_sweep_matches_pointwise(self):
        lens = SmartContactLens(watch_power_dbm=10.0)
        distances = np.array([6.0, 12.0, 24.0])
        sweep = lens.rssi_sweep(distances)
        assert sweep[1] == pytest.approx(lens.rssi_at(12.0))

    def test_invalid_distance(self):
        with pytest.raises(ConfigurationError):
            SmartContactLens(watch_distance_inches=0.0)
