"""Tests for the implanted neural recorder application model (§5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.neural_implant import NeuralFrame, NeuralImplant
from repro.exceptions import ConfigurationError


class TestNeuralFrame:
    def test_encode_decode_roundtrip(self, rng):
        samples = rng.integers(-500, 500, (8, 4)).astype(np.int16)
        frame = NeuralFrame(channel_samples=samples, sequence=3)
        decoded = NeuralFrame.decode(frame.encode())
        assert decoded.sequence == 3
        assert np.array_equal(decoded.channel_samples, samples)

    def test_num_channels(self):
        frame = NeuralFrame(channel_samples=np.zeros((16, 2), dtype=np.int16), sequence=0)
        assert frame.num_channels == 16

    def test_decode_too_short(self):
        with pytest.raises(ConfigurationError):
            NeuralFrame.decode(b"\x00")


class TestNeuralImplant:
    def test_rssi_decreases_with_distance(self):
        implant = NeuralImplant(bluetooth_power_dbm=20.0)
        assert implant.rssi_at(6.0) > implant.rssi_at(40.0) > implant.rssi_at(80.0)

    def test_tissue_hurts_but_link_survives(self):
        # §5.2: feasible despite significant attenuation from muscle tissue;
        # range far beyond the 1-2 cm of prior dedicated readers.
        implant = NeuralImplant(bluetooth_power_dbm=10.0)
        assert implant.rssi_at(10.0) > -92.0

    def test_deliver_frame_close(self):
        implant = NeuralImplant(bluetooth_power_dbm=20.0, rng=np.random.default_rng(0))
        telemetry = implant.deliver_frame(12.0)
        assert telemetry.delivered
        assert telemetry.frame_bytes > 8

    def test_record_frame_shape(self):
        implant = NeuralImplant(num_channels=16, rng=np.random.default_rng(0))
        frame = implant.record_frame(samples_per_channel=6)
        assert frame.channel_samples.shape == (16, 6)

    def test_recording_data_rate(self):
        implant = NeuralImplant(num_channels=8, sample_rate_hz=1000.0)
        assert implant.recording_data_rate_bps() == 8 * 1000 * 16

    def test_uplink_goodput_scales_with_rate(self):
        slow = NeuralImplant(wifi_rate_mbps=2.0).uplink_goodput_bps()
        fast = NeuralImplant(wifi_rate_mbps=11.0).uplink_goodput_bps()
        assert fast > 4 * slow

    def test_sustainable_channels_positive_at_11mbps(self):
        implant = NeuralImplant(wifi_rate_mbps=11.0, sample_rate_hz=500.0)
        assert implant.sustainable_channels() >= 8

    def test_total_power_dominated_by_recording(self):
        implant = NeuralImplant(num_channels=64)
        total = implant.total_power_uw()
        assert total > 64 * 2.0
        assert total < 64 * 2.0 + 5.0  # communication adds only a few µW

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            NeuralImplant(num_channels=0)
        with pytest.raises(ConfigurationError):
            NeuralImplant(sample_rate_hz=0.0)
