"""Tests for the envelope/peak detectors and the IC power model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backscatter.detector import EnvelopeDetector, PeakDetectorReceiver
from repro.backscatter.power import ACTIVE_RADIO_POWER_UW, InterscatterPowerModel
from repro.exceptions import ConfigurationError
from repro.utils.dsp import dbm_to_watts


class TestEnvelopeDetector:
    def _waveform_with_packet(self, power_dbm: float, fs: float = 8e6) -> np.ndarray:
        amplitude = np.sqrt(dbm_to_watts(power_dbm))
        idle = np.zeros(400, dtype=complex)
        packet = amplitude * np.exp(2j * np.pi * 0.01 * np.arange(2000))
        return np.concatenate([idle, packet])

    def test_detects_strong_packet(self):
        detector = EnvelopeDetector(8e6, threshold_dbm=-40.0)
        detection = detector.detect(self._waveform_with_packet(-20.0))
        assert detection.triggered
        assert detection.trigger_sample >= 400

    def test_ignores_weak_packet(self):
        # The paper tunes the threshold so only nearby Bluetooth (8-10 ft) triggers.
        detector = EnvelopeDetector(8e6, threshold_dbm=-40.0)
        assert not detector.detect(self._waveform_with_packet(-60.0)).triggered

    def test_trigger_time_consistent(self):
        detector = EnvelopeDetector(8e6, threshold_dbm=-40.0)
        detection = detector.detect(self._waveform_with_packet(-10.0))
        assert detection.trigger_time_s == pytest.approx(
            detection.trigger_sample / 8e6
        )

    def test_envelope_is_smoothed(self):
        detector = EnvelopeDetector(8e6, time_constant_s=5e-6)
        waveform = self._waveform_with_packet(-20.0)
        envelope = detector.envelope(waveform)
        assert envelope.size == waveform.size
        assert envelope[401] < np.abs(waveform[401])  # attack takes time

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            EnvelopeDetector(0.0)
        with pytest.raises(ConfigurationError):
            EnvelopeDetector(8e6, time_constant_s=0.0)


class TestPeakDetectorReceiver:
    def test_below_sensitivity_is_random(self, rng):
        detector = PeakDetectorReceiver(sensitivity_dbm=-32.0)
        bits = detector.decode_bits(
            np.zeros(8000, dtype=complex),
            samples_per_symbol=80,
            num_symbols=100,
            rssi_dbm=-60.0,
            rng=rng,
        )
        assert bits.size == 50
        assert 10 < bits.sum() < 40  # random, not stuck at 0 or 1

    def test_envelope_tracks_amplitude_steps(self):
        detector = PeakDetectorReceiver()
        signal = np.concatenate([np.ones(400), np.zeros(400), np.ones(400)]).astype(complex)
        envelope = detector.envelope(signal)
        assert envelope[350] > 0.9
        assert envelope[799] < 0.3
        assert envelope[1150] > 0.9

    def test_invalid_sample_rate(self):
        with pytest.raises(ConfigurationError):
            PeakDetectorReceiver(0.0)


class TestPowerModel:
    def test_reference_matches_paper(self):
        breakdown = InterscatterPowerModel().reference_breakdown()
        assert breakdown.frequency_synthesizer_uw == pytest.approx(9.69)
        assert breakdown.baseband_processor_uw == pytest.approx(8.51)
        assert breakdown.backscatter_modulator_uw == pytest.approx(9.79)
        assert breakdown.total_uw == pytest.approx(28.0, abs=0.1)

    def test_power_scales_with_shift(self):
        model = InterscatterPowerModel()
        low = model.estimate(shift_hz=12e6).total_uw
        high = model.estimate(shift_hz=48e6).total_uw
        assert high > low

    def test_power_scales_with_supply_squared(self):
        nominal = InterscatterPowerModel(supply_voltage_v=1.0).reference_breakdown().total_uw
        reduced = InterscatterPowerModel(supply_voltage_v=0.7).reference_breakdown().total_uw
        assert reduced == pytest.approx(nominal * 0.49, rel=0.01)

    def test_duty_cycle_scales_linearly(self):
        model = InterscatterPowerModel()
        assert model.estimate(duty_cycle=0.1).total_uw == pytest.approx(
            model.estimate(duty_cycle=1.0).total_uw * 0.1
        )

    def test_savings_versus_active_radios(self):
        model = InterscatterPowerModel()
        for radio in ACTIVE_RADIO_POWER_UW:
            assert model.savings_versus_active(radio) > 100.0

    def test_energy_per_bit(self):
        model = InterscatterPowerModel()
        # 28 µW at 2 Mbps = 14 pJ/bit.
        assert model.energy_per_bit_nj(2.0) == pytest.approx(0.014, rel=0.05)

    def test_as_dict(self):
        breakdown = InterscatterPowerModel().reference_breakdown()
        data = breakdown.as_dict()
        assert data["total_uw"] == pytest.approx(breakdown.total_uw)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            InterscatterPowerModel(supply_voltage_v=0.0)
        with pytest.raises(ConfigurationError):
            InterscatterPowerModel().estimate(wifi_rate_mbps=0.0)
        with pytest.raises(ConfigurationError):
            InterscatterPowerModel().estimate(duty_cycle=1.5)
        with pytest.raises(ConfigurationError):
            InterscatterPowerModel().savings_versus_active("lte")
