"""Tests for the impedance model and the square-wave sub-carrier."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backscatter.impedance import (
    FPGA_PROTOTYPE_COMPONENTS,
    QUADRATURE_IMPEDANCE_STATES,
    component_impedance,
    optimize_states_for_antenna,
    quadrature_reflection_targets,
    reflection_coefficient,
)
from repro.backscatter.subcarrier import (
    SquareWaveSubcarrier,
    quadrature_square_wave,
    square_wave,
    square_wave_harmonics,
)
from repro.exceptions import ConfigurationError
from repro.utils.spectrum import power_spectral_density, spectral_peak


class TestReflectionCoefficient:
    def test_matched_load_no_reflection(self):
        assert reflection_coefficient(50.0, 50.0) == pytest.approx(0.0)

    def test_short_circuit_full_reflection(self):
        assert reflection_coefficient(50.0, 0.0) == pytest.approx(1.0)

    def test_open_circuit_inverted_reflection(self):
        assert reflection_coefficient(50.0, 1e12) == pytest.approx(-1.0, abs=1e-6)

    def test_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            reflection_coefficient(50.0, -50.0)

    def test_magnitude_bounded_for_reactive_loads(self):
        gamma = reflection_coefficient(50.0, 25j)
        assert abs(gamma) == pytest.approx(1.0)


class TestQuadratureStates:
    def test_four_states(self):
        assert set(QUADRATURE_IMPEDANCE_STATES) == {"1+j", "1-j", "-1+j", "-1-j"}

    def test_states_realise_their_targets(self):
        for state in QUADRATURE_IMPEDANCE_STATES.values():
            assert state.reflection(50.0) == pytest.approx(state.target_reflection, abs=1e-9)

    def test_targets_are_quadrature(self):
        targets = quadrature_reflection_targets()
        phases = sorted(np.angle(v) % (2 * np.pi) for v in targets.values())
        gaps = np.diff(phases)
        assert np.allclose(gaps, np.pi / 2, atol=1e-9)

    def test_reoptimised_states_for_loop_antenna(self):
        states = optimize_states_for_antenna(15.0 + 45.0j)
        for state in states.values():
            assert state.reflection(15.0 + 45.0j) == pytest.approx(state.target_reflection, abs=1e-9)

    def test_zero_antenna_rejected(self):
        with pytest.raises(ConfigurationError):
            optimize_states_for_antenna(0.0)

    def test_prototype_components_are_reactive(self):
        for kwargs in FPGA_PROTOTYPE_COMPONENTS.values():
            impedance = component_impedance(**kwargs)
            assert abs(impedance.real) < 1e-6 or kwargs.get("open_circuit")

    def test_component_impedance_requires_argument(self):
        with pytest.raises(ConfigurationError):
            component_impedance()


class TestSquareWave:
    def test_values_are_plus_minus_one(self):
        wave = square_wave(1e6, 16e6, 64)
        assert set(np.unique(wave)) <= {1.0, -1.0}

    def test_harmonic_levels_match_paper(self):
        harmonics = square_wave_harmonics(5)
        assert harmonics[1] == pytest.approx(0.0)
        assert harmonics[3] == pytest.approx(-9.5, abs=0.1)
        assert harmonics[5] == pytest.approx(-14.0, abs=0.1)

    def test_quadrature_square_wave_values(self):
        wave = quadrature_square_wave(1e6, 16e6, 64)
        assert np.allclose(np.abs(wave.real), 1.0)
        assert np.allclose(np.abs(wave.imag), 1.0)

    def test_subcarrier_spectral_peak_at_shift(self):
        generator = SquareWaveSubcarrier(shift_hz=5e6, sample_rate_hz=40e6)
        samples = generator.generate(8192)
        peak, _ = spectral_peak(power_spectral_density(samples, 40e6))
        assert peak == pytest.approx(5e6, abs=50e3)

    def test_ideal_subcarrier_is_pure_exponential(self):
        generator = SquareWaveSubcarrier(shift_hz=5e6, sample_rate_hz=40e6, ideal=True)
        samples = generator.generate(1024)
        assert np.allclose(np.abs(samples), 1.0)

    def test_negative_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            square_wave(1e6, 16e6, -5)

    @given(st.floats(min_value=1e5, max_value=1e7))
    def test_property_square_wave_zero_mean(self, freq):
        # An odd number of samples per period biases the sampled wave by up
        # to one sample per period, so the bound reflects that quantisation.
        wave = square_wave(freq, 80e6, 8000)
        assert abs(np.mean(wave)) < 0.12
