"""Tests for the single- and double-sideband backscatter modulators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backscatter.dsb import DoubleSidebandModulator
from repro.backscatter.ssb import SingleSidebandModulator
from repro.exceptions import ConfigurationError
from repro.utils.spectrum import power_spectral_density, spectral_peak, spectrum_asymmetry_db


@pytest.fixture
def ssb():
    return SingleSidebandModulator(shift_hz=22e6, sample_rate_hz=88e6)


@pytest.fixture
def dsb():
    return DoubleSidebandModulator(shift_hz=22e6, sample_rate_hz=88e6)


class TestSingleSideband:
    def test_pure_shift_lands_at_plus_delta_f(self, ssb):
        tone = np.ones(16384, dtype=complex)
        output = ssb.modulate_tone_shift(16384).apply_to(tone)
        peak, _ = spectral_peak(power_spectral_density(output, ssb.sample_rate_hz))
        assert peak == pytest.approx(22e6, abs=100e3)

    def test_mirror_copy_suppressed(self, ssb):
        tone = np.ones(16384, dtype=complex)
        output = ssb.modulate_tone_shift(16384).apply_to(tone)
        asym = spectrum_asymmetry_db(
            power_spectral_density(output, ssb.sample_rate_hz), 0.0, 22e6, 2e6
        )
        assert asym > 20.0

    def test_four_switch_states_only(self, ssb):
        waveform = ssb.modulate_tone_shift(4096)
        assert set(np.unique(waveform.state_indices)) <= {0, 1, 2, 3}
        assert len(np.unique(np.round(waveform.reflection, 9))) <= 4

    def test_reflection_magnitude_bounded(self, ssb):
        waveform = ssb.modulate_tone_shift(4096)
        assert np.max(np.abs(waveform.reflection)) <= 1.0 + 1e-9

    def test_negative_shift_supported(self):
        modulator = SingleSidebandModulator(shift_hz=-6e6, sample_rate_hz=88e6)
        tone = np.ones(16384, dtype=complex)
        output = modulator.modulate_tone_shift(16384).apply_to(tone)
        peak, _ = spectral_peak(power_spectral_density(output, 88e6))
        assert peak == pytest.approx(-6e6, abs=100e3)

    def test_upsample_symbols(self, ssb):
        chips = np.ones(11, dtype=complex)
        upsampled = ssb.upsample_symbols(chips, 11e6)
        assert upsampled.size == 88

    def test_upsample_rate_check(self, ssb):
        with pytest.raises(ConfigurationError):
            ssb.upsample_symbols(np.ones(4, dtype=complex), 200e6)

    def test_sample_rate_nyquist_check(self):
        with pytest.raises(ConfigurationError):
            SingleSidebandModulator(shift_hz=50e6, sample_rate_hz=88e6)

    def test_empty_baseband_rejected(self, ssb):
        with pytest.raises(ConfigurationError):
            ssb.modulate_baseband(np.zeros(0, dtype=complex))

    def test_incident_shorter_than_reflection_rejected(self, ssb):
        waveform = ssb.modulate_tone_shift(1000)
        with pytest.raises(ConfigurationError):
            waveform.apply_to(np.ones(10, dtype=complex))

    def test_loop_antenna_states(self):
        modulator = SingleSidebandModulator(
            shift_hz=22e6, sample_rate_hz=88e6, antenna_impedance_ohm=15.0 + 45.0j
        )
        assert len(modulator.impedance_states) == 4

    def test_ideal_subcarrier_ablation_cleaner(self):
        # Use a 10 MHz shift so the third harmonic (-30 MHz) does not alias
        # back onto the fundamental at the 88 MHz simulation rate.
        real = SingleSidebandModulator(shift_hz=10e6, sample_rate_hz=88e6)
        ideal = SingleSidebandModulator(
            shift_hz=10e6, sample_rate_hz=88e6, ideal_subcarrier=True, quantize_to_states=False
        )
        tone = np.ones(16384, dtype=complex)
        real_out = real.modulate_tone_shift(16384).apply_to(tone)
        ideal_out = ideal.modulate_tone_shift(16384).apply_to(tone)
        real_spectrum = power_spectral_density(real_out, 88e6)
        ideal_spectrum = power_spectral_density(ideal_out, 88e6)
        # The square-wave version has a third-harmonic image at -3·Δf that the
        # ideal complex exponential lacks (the 9.5 dB image of §2.3.1).
        real_harmonic = real_spectrum.band_power(-31e6, -29e6)
        ideal_harmonic = ideal_spectrum.band_power(-31e6, -29e6)
        fundamental = real_spectrum.band_power(9e6, 11e6)
        assert real_harmonic > 10.0 * ideal_harmonic
        assert 10.0 * np.log10(fundamental / real_harmonic) == pytest.approx(9.5, abs=2.0)


class TestDoubleSideband:
    def test_mirror_copy_present(self, dsb):
        tone = np.ones(16384, dtype=complex)
        output = dsb.modulate_tone_shift(16384).apply_to(tone)
        asym = spectrum_asymmetry_db(
            power_spectral_density(output, dsb.sample_rate_hz), 0.0, 22e6, 2e6
        )
        assert abs(asym) < 1.0

    def test_reflection_is_real(self, dsb):
        waveform = dsb.modulate_tone_shift(4096)
        assert not np.iscomplexobj(waveform.reflection) or np.allclose(waveform.reflection.imag, 0)

    def test_nyquist_check(self):
        with pytest.raises(ConfigurationError):
            DoubleSidebandModulator(shift_hz=50e6, sample_rate_hz=88e6)

    def test_empty_rejected(self, dsb):
        with pytest.raises(ConfigurationError):
            dsb.modulate_baseband(np.zeros(0, dtype=complex))
