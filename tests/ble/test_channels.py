"""Tests for the BLE channel map."""

from __future__ import annotations

import pytest

from repro.ble.channels import (
    ADVERTISING_CHANNELS,
    DATA_CHANNELS,
    ISM_BAND_HIGH_MHZ,
    ISM_BAND_LOW_MHZ,
    advertising_channel,
    channel_for_frequency,
    channel_frequency_mhz,
)
from repro.exceptions import ConfigurationError


class TestAdvertisingChannels:
    def test_three_advertising_channels(self):
        assert sorted(ADVERTISING_CHANNELS) == [37, 38, 39]

    def test_paper_frequencies(self):
        # Fig. 3: channel 37 at 2402, 38 at 2426, 39 at 2480 MHz.
        assert advertising_channel(37).frequency_mhz == 2402.0
        assert advertising_channel(38).frequency_mhz == 2426.0
        assert advertising_channel(39).frequency_mhz == 2480.0

    def test_channels_37_39_at_band_edges(self):
        # The mirror-copy argument of §2.3.1 relies on 37/39 hugging the band edges.
        assert advertising_channel(37).frequency_mhz - ISM_BAND_LOW_MHZ < 3.0
        assert ISM_BAND_HIGH_MHZ - advertising_channel(39).frequency_mhz < 4.0

    def test_non_advertising_index_rejected(self):
        with pytest.raises(ConfigurationError):
            advertising_channel(10)


class TestDataChannels:
    def test_thirty_seven_data_channels(self):
        assert len(DATA_CHANNELS) == 37

    def test_data_channels_2mhz_spacing(self):
        freqs = sorted(ch.frequency_mhz for ch in DATA_CHANNELS.values())
        gaps = {round(b - a, 3) for a, b in zip(freqs, freqs[1:], strict=False)}
        # All gaps are 2 MHz except the 4 MHz hole around advertising ch. 38.
        assert gaps <= {2.0, 4.0}

    def test_all_frequencies_unique(self):
        all_freqs = [channel_frequency_mhz(i) for i in range(40)]
        assert len(set(all_freqs)) == 40


class TestLookups:
    def test_frequency_lookup(self):
        assert channel_for_frequency(2426.0).index == 38

    def test_frequency_lookup_miss(self):
        with pytest.raises(ConfigurationError):
            channel_for_frequency(2500.0)

    def test_invalid_index(self):
        with pytest.raises(ConfigurationError):
            channel_frequency_mhz(40)

    def test_frequency_hz_property(self):
        assert advertising_channel(38).frequency_hz == pytest.approx(2.426e9)
