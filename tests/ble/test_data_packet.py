"""Tests for BLE data-channel packets as an interscatter source (§7 extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ble.data_packet import (
    MAX_DATA_PAYLOAD_BYTES_EXTENDED,
    MAX_DATA_PAYLOAD_BYTES_LEGACY,
    DataChannelPacket,
    craft_data_channel_single_tone,
)
from repro.core.timing import data_packet_wifi_budget, max_wifi_payload_bytes
from repro.exceptions import ConfigurationError, CrcError, PacketFormatError


class TestDataChannelPacket:
    def test_roundtrip(self):
        packet = DataChannelPacket(payload=b"connection data", channel_index=20)
        parsed = DataChannelPacket.from_air_bits(
            packet.air_bits(),
            channel_index=20,
            access_address=packet.access_address,
            crc_init=packet.crc_init,
        )
        assert parsed.payload == b"connection data"
        assert parsed.llid == packet.llid

    def test_wrong_crc_init_fails(self):
        packet = DataChannelPacket(payload=b"secret", crc_init=0x111111)
        with pytest.raises((CrcError, PacketFormatError)):
            DataChannelPacket.from_air_bits(
                packet.air_bits(),
                channel_index=packet.channel_index,
                access_address=packet.access_address,
                crc_init=0x222222,
            )

    def test_extended_length_limit(self):
        DataChannelPacket(payload=b"x" * MAX_DATA_PAYLOAD_BYTES_EXTENDED)
        with pytest.raises(PacketFormatError):
            DataChannelPacket(payload=b"x" * (MAX_DATA_PAYLOAD_BYTES_EXTENDED + 1))

    def test_legacy_length_limit(self):
        with pytest.raises(PacketFormatError):
            DataChannelPacket(
                payload=b"x" * (MAX_DATA_PAYLOAD_BYTES_LEGACY + 1), extended_length=False
            )

    def test_advertising_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            DataChannelPacket(payload=b"x", channel_index=38)

    def test_duration_scales_with_payload(self):
        short = DataChannelPacket(payload=b"x" * 27)
        long = DataChannelPacket(payload=b"x" * 251)
        assert long.payload_duration_s == pytest.approx(2008e-6)
        assert long.duration_s > short.duration_s


class TestDataChannelSingleTone:
    @pytest.mark.parametrize("channel", [0, 11, 36])
    @pytest.mark.parametrize("tone_bit", [0, 1])
    def test_payload_whitens_to_constant(self, channel, tone_bit):
        crafted = craft_data_channel_single_tone(channel, tone_bit=tone_bit, payload_length=100)
        on_air = crafted.on_air_payload_bits()
        assert on_air.size == 100 * 8
        assert np.all(on_air == tone_bit)

    def test_maximum_window_is_about_2ms(self):
        crafted = craft_data_channel_single_tone(11)
        assert crafted.tone_duration_s == pytest.approx(2008e-6)
        # ~8x the 248 µs advertising payload window the paper evaluates.
        assert crafted.tone_duration_s > 8.0 * 248e-6

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            craft_data_channel_single_tone(11, tone_bit=2)
        with pytest.raises(ConfigurationError):
            craft_data_channel_single_tone(11, payload_length=0)
        with pytest.raises(ConfigurationError):
            craft_data_channel_single_tone(39)

    @given(st.integers(min_value=0, max_value=36), st.integers(min_value=1, max_value=251))
    def test_property_constant_for_all_channels_and_lengths(self, channel, length):
        crafted = craft_data_channel_single_tone(channel, payload_length=length)
        assert np.all(crafted.on_air_payload_bits() == 1)


class TestDataPacketWifiBudget:
    def test_1mbps_now_fits(self):
        # The paper's §2.3.3 observation is that 1 Mbps does NOT fit in an
        # advertisement; with a 251-byte data packet it does.
        budget = data_packet_wifi_budget(1.0)
        assert budget["fits_1mbps_packet"] == 1.0
        assert budget["max_wifi_psdu_bytes"] > 200

    def test_throughput_gain_over_advertising(self):
        for rate in (2.0, 5.5, 11.0):
            budget = data_packet_wifi_budget(rate)
            assert budget["max_wifi_psdu_bytes"] > 6 * max_wifi_payload_bytes(rate)
            assert budget["gain_over_advertising"] > 6.0

    def test_11mbps_budget(self):
        budget = data_packet_wifi_budget(11.0)
        # ~2 ms window at 11 Mbps is well over 2 kB of Wi-Fi payload.
        assert budget["max_wifi_psdu_bytes"] > 2000

    def test_invalid_payload(self):
        with pytest.raises(ConfigurationError):
            data_packet_wifi_budget(2.0, ble_data_payload_bytes=0)
