"""Tests for BLE device profiles and the transmitter model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.devices import DEVICE_PROFILES, TX_POWER_LEVELS_DBM, BleDeviceProfile
from repro.ble.packet import AdvertisingPacket
from repro.ble.radio import BleTransmitter
from repro.utils.dsp import signal_power, watts_to_dbm
from repro.utils.spectrum import occupied_bandwidth, power_spectral_density


class TestDeviceProfiles:
    def test_paper_devices_present(self):
        assert {"ti_cc2650", "galaxy_s5", "moto360"} <= set(DEVICE_PROFILES)

    def test_power_levels_match_paper(self):
        assert TX_POWER_LEVELS_DBM == (0.0, 4.0, 10.0, 20.0)

    def test_deviation_scales_with_index_error(self):
        profile = BleDeviceProfile(name="x", tx_power_dbm=0.0, modulation_index_error=0.1)
        assert profile.frequency_deviation_hz == pytest.approx(275e3)

    def test_ti_gap_matches_paper(self):
        # ΔT ≈ 400 µs for TI chipsets (§2.3.3).
        assert DEVICE_PROFILES["ti_cc2650"].inter_channel_gap_s == pytest.approx(400e-6)


class TestBleTransmitter:
    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            BleTransmitter("not_a_device")

    def test_transmit_power_scaling(self):
        packet = AdvertisingPacket(payload=b"x" * 16)
        tx = BleTransmitter("ti_cc2650", tx_power_dbm=10.0, rng=np.random.default_rng(0))
        transmission = tx.transmit(packet)
        measured = watts_to_dbm(signal_power(transmission.waveform.samples))
        assert measured == pytest.approx(10.0, abs=0.5)

    def test_payload_window_indices(self):
        packet = AdvertisingPacket(payload=b"x" * 31)
        tx = BleTransmitter("ti_cc2650", rng=np.random.default_rng(0))
        transmission = tx.transmit(packet)
        expected = 31 * 8 * tx.samples_per_symbol
        assert transmission.payload_end_sample - transmission.payload_start_sample == expected

    def test_single_tone_transmission_is_narrowband(self):
        tx = BleTransmitter("ti_cc2650", rng=np.random.default_rng(0))
        crafted, transmission = tx.transmit_single_tone(38)
        spectrum = power_spectral_density(transmission.payload_waveform, tx.sample_rate_hz)
        assert occupied_bandwidth(spectrum) < 400e3

    def test_random_payload_transmission_is_wideband(self):
        tx = BleTransmitter("galaxy_s5", rng=np.random.default_rng(0))
        transmission = tx.transmit_random_payload(38)
        spectrum = power_spectral_density(transmission.payload_waveform, tx.sample_rate_hz)
        assert occupied_bandwidth(spectrum) > 500e3

    def test_impairments_applied_per_profile(self):
        packet = AdvertisingPacket(payload=b"y" * 16)
        clean = BleTransmitter("class1_reference", tx_power_dbm=0.0, rng=np.random.default_rng(1))
        noisy = BleTransmitter("moto360", tx_power_dbm=0.0, rng=np.random.default_rng(1))
        assert not np.allclose(
            clean.transmit(packet).waveform.samples, noisy.transmit(packet).waveform.samples
        )
