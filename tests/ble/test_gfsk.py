"""Tests for the GFSK modulator/demodulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ble.gfsk import GfskDemodulator, GfskModulator
from repro.exceptions import ConfigurationError
from repro.utils.dsp import add_awgn
from repro.utils.spectrum import occupied_bandwidth, power_spectral_density, spectral_peak


class TestModulator:
    def test_constant_amplitude(self):
        modulator = GfskModulator(8)
        waveform = modulator.modulate(np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8))
        assert np.allclose(np.abs(waveform.samples), 1.0)

    def test_sample_count(self):
        modulator = GfskModulator(8)
        waveform = modulator.modulate(np.ones(20, dtype=np.uint8))
        assert len(waveform) == 20 * 8

    def test_constant_ones_is_positive_tone(self):
        modulator = GfskModulator(8)
        waveform = modulator.modulate(np.ones(200, dtype=np.uint8))
        spectrum = power_spectral_density(waveform.samples, modulator.sample_rate_hz)
        peak, _ = spectral_peak(spectrum)
        assert peak == pytest.approx(250e3, abs=40e3)

    def test_constant_zeros_is_negative_tone(self):
        modulator = GfskModulator(8)
        waveform = modulator.modulate(np.zeros(200, dtype=np.uint8))
        spectrum = power_spectral_density(waveform.samples, modulator.sample_rate_hz)
        peak, _ = spectral_peak(spectrum)
        assert peak == pytest.approx(-250e3, abs=40e3)

    def test_single_tone_much_narrower_than_random(self, rng):
        modulator = GfskModulator(8)
        tone = modulator.modulate(np.ones(248, dtype=np.uint8))
        random_bits = rng.integers(0, 2, 248).astype(np.uint8)
        random = modulator.modulate(random_bits)
        tone_bw = occupied_bandwidth(
            power_spectral_density(tone.samples, modulator.sample_rate_hz)
        )
        random_bw = occupied_bandwidth(
            power_spectral_density(random.samples, modulator.sample_rate_hz)
        )
        assert tone_bw < random_bw / 3.0

    def test_empty_bits(self):
        waveform = GfskModulator(8).modulate(np.zeros(0, dtype=np.uint8))
        assert len(waveform) == 0

    def test_invalid_sps(self):
        with pytest.raises(ConfigurationError):
            GfskModulator(1)

    def test_duration(self):
        waveform = GfskModulator(8).modulate(np.ones(100, dtype=np.uint8))
        assert waveform.duration_s == pytest.approx(100e-6)


class TestDemodulator:
    def test_roundtrip_clean(self, rng):
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        modulator = GfskModulator(8)
        demodulator = GfskDemodulator(8)
        recovered = demodulator.demodulate(modulator.modulate(bits), len(bits))
        assert np.array_equal(recovered, bits)

    def test_roundtrip_with_noise(self, rng):
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        modulator = GfskModulator(8)
        waveform = modulator.modulate(bits)
        noisy = waveform.__class__(
            samples=add_awgn(waveform.samples, 20.0, rng=rng),
            sample_rate_hz=waveform.sample_rate_hz,
            center_frequency_hz=waveform.center_frequency_hz,
        )
        recovered = GfskDemodulator(8).demodulate(noisy, len(bits))
        errors = np.count_nonzero(recovered != bits)
        assert errors <= 3

    def test_invalid_sps(self):
        with pytest.raises(ConfigurationError):
            GfskDemodulator(1)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=64))
    def test_property_roundtrip(self, bits):
        bits = np.asarray(bits, dtype=np.uint8)
        modulator = GfskModulator(8)
        recovered = GfskDemodulator(8).demodulate(modulator.modulate(bits), len(bits))
        assert np.array_equal(recovered, bits)
