"""Tests for BLE advertising packet assembly and parsing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ble.packet import (
    ADVERTISING_ACCESS_ADDRESS,
    ANDROID_CONTROLLABLE_PAYLOAD_BYTES,
    MAX_ADV_DATA_BYTES,
    AdvertisingPacket,
    AdvertisingPduType,
)
from repro.exceptions import CrcError, PacketFormatError


class TestPacketConstruction:
    def test_default_packet_valid(self):
        packet = AdvertisingPacket(payload=b"hello")
        assert packet.pdu_type is AdvertisingPduType.ADV_NONCONN_IND

    def test_payload_too_long(self):
        with pytest.raises(PacketFormatError):
            AdvertisingPacket(payload=b"x" * (MAX_ADV_DATA_BYTES + 1))

    def test_bad_address_length(self):
        with pytest.raises(PacketFormatError):
            AdvertisingPacket(advertiser_address=b"\x01\x02")

    def test_android_constant_sane(self):
        assert ANDROID_CONTROLLABLE_PAYLOAD_BYTES < MAX_ADV_DATA_BYTES

    def test_header_length_field(self):
        packet = AdvertisingPacket(payload=b"12345")
        header = packet.header_bytes()
        assert header[1] == 6 + 5  # AdvA + payload


class TestAirBits:
    def test_packet_bit_count(self):
        packet = AdvertisingPacket(payload=b"x" * 31)
        # preamble 8 + AA 32 + header 16 + AdvA 48 + payload 248 + CRC 24.
        assert packet.air_bits().size == 8 + 32 + 16 + 48 + 31 * 8 + 24

    def test_preamble_and_aa_not_whitened(self):
        packet = AdvertisingPacket(payload=b"data")
        assert np.array_equal(packet.air_bits()[:40], packet.unwhitened_bits()[:40])

    def test_pdu_is_whitened(self):
        packet = AdvertisingPacket(payload=b"data")
        assert not np.array_equal(packet.air_bits()[40:], packet.unwhitened_bits()[40:])

    def test_durations(self):
        packet = AdvertisingPacket(payload=b"x" * 31)
        assert packet.payload_duration_s == pytest.approx(248e-6)
        assert packet.duration_s == pytest.approx((8 + 32 + 16 + 48 + 248 + 24) * 1e-6)
        assert packet.preamble_header_duration_s == pytest.approx(104e-6)

    def test_payload_air_bits_length(self):
        packet = AdvertisingPacket(payload=b"x" * 10)
        assert packet.payload_air_bits().size == 80


class TestRoundTrip:
    @pytest.mark.parametrize("channel", [37, 38, 39])
    def test_parse_round_trip(self, channel):
        packet = AdvertisingPacket(payload=b"interscatter!", channel_index=channel)
        parsed = AdvertisingPacket.from_air_bits(packet.air_bits(), channel)
        assert parsed.payload == b"interscatter!"
        assert parsed.advertiser_address == packet.advertiser_address

    def test_wrong_channel_fails_crc(self):
        packet = AdvertisingPacket(payload=b"interscatter!", channel_index=38)
        with pytest.raises((CrcError, PacketFormatError)):
            AdvertisingPacket.from_air_bits(packet.air_bits(), 39)

    def test_corrupted_bit_fails_crc(self):
        packet = AdvertisingPacket(payload=b"payload bytes", channel_index=38)
        bits = packet.air_bits().copy()
        bits[90] ^= 1
        with pytest.raises((CrcError, PacketFormatError)):
            AdvertisingPacket.from_air_bits(bits, 38)

    def test_truncated_raises(self):
        packet = AdvertisingPacket(payload=b"payload", channel_index=38)
        with pytest.raises(PacketFormatError):
            AdvertisingPacket.from_air_bits(packet.air_bits()[:50], 38)

    def test_access_address_constant(self):
        assert ADVERTISING_ACCESS_ADDRESS == 0x8E89BED6
