"""Tests for the single-tone payload construction (§2.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ble.packet import ANDROID_CONTROLLABLE_PAYLOAD_BYTES
from repro.ble.single_tone import craft_single_tone_payload, tone_offset_hz
from repro.exceptions import ConfigurationError


class TestCraftSingleTone:
    @pytest.mark.parametrize("channel", [37, 38, 39])
    @pytest.mark.parametrize("tone_bit", [0, 1])
    def test_payload_whitens_to_constant(self, channel, tone_bit):
        crafted = craft_single_tone_payload(channel, tone_bit=tone_bit)
        on_air = crafted.on_air_payload_bits()
        assert on_air.size == 31 * 8
        assert np.all(on_air == tone_bit)

    def test_payload_itself_is_not_constant(self):
        # The data handed to the advertising API is the keystream, which is
        # pseudo-random — the constancy only appears after whitening.
        crafted = craft_single_tone_payload(38, tone_bit=1)
        payload_bits = np.unpackbits(np.frombuffer(crafted.payload, dtype=np.uint8))
        assert 0 < payload_bits.sum() < payload_bits.size

    def test_different_channels_need_different_payloads(self):
        assert (
            craft_single_tone_payload(37).payload
            != craft_single_tone_payload(38).payload
        )

    def test_shorter_payload(self):
        crafted = craft_single_tone_payload(38, payload_length=10)
        assert len(crafted.payload) == 10
        assert np.all(crafted.on_air_payload_bits() == 1)

    def test_android_constraint_limits_controllable_bytes(self):
        crafted = craft_single_tone_payload(38, android_constraint=True)
        assert crafted.controllable_bytes == ANDROID_CONTROLLABLE_PAYLOAD_BYTES
        on_air = crafted.on_air_payload_bits()
        controllable = on_air[: ANDROID_CONTROLLABLE_PAYLOAD_BYTES * 8]
        rest = on_air[ANDROID_CONTROLLABLE_PAYLOAD_BYTES * 8 :]
        assert np.all(controllable == 1)
        # The uncontrollable tail whitens to pseudo-random bits, not a tone.
        assert 0 < rest.sum() < rest.size

    def test_tone_offset_sign(self):
        assert craft_single_tone_payload(38, tone_bit=1).tone_offset_hz > 0
        assert craft_single_tone_payload(38, tone_bit=0).tone_offset_hz < 0

    def test_invalid_tone_bit(self):
        with pytest.raises(ConfigurationError):
            craft_single_tone_payload(38, tone_bit=2)

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            craft_single_tone_payload(38, payload_length=0)

    def test_invalid_channel(self):
        with pytest.raises(ConfigurationError):
            craft_single_tone_payload(45)

    def test_packet_round_trips_through_parser(self):
        from repro.ble.packet import AdvertisingPacket

        crafted = craft_single_tone_payload(38)
        parsed = AdvertisingPacket.from_air_bits(crafted.packet.air_bits(), 38)
        assert parsed.payload == crafted.payload


class TestToneOffset:
    def test_values(self):
        assert tone_offset_hz(1) == pytest.approx(250e3)
        assert tone_offset_hz(0) == pytest.approx(-250e3)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            tone_offset_hz(3)

    @given(st.integers(min_value=1, max_value=31), st.sampled_from([37, 38, 39]))
    def test_property_all_lengths_whiten_constant(self, length, channel):
        crafted = craft_single_tone_payload(channel, payload_length=length)
        assert np.all(crafted.on_air_payload_bits() == 1)
