"""Tests for BLE data whitening (the §2.2 key mechanism)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ble.whitening import initial_state_for_channel, whiten, whitening_sequence
from repro.exceptions import ConfigurationError


class TestInitialState:
    def test_channel_37_state(self):
        # Position 0 is 1 and positions 1-6 hold the channel index MSB-first:
        # 37 = 0b100101.
        assert initial_state_for_channel(37) == [1, 1, 0, 0, 1, 0, 1]

    def test_channel_38_state(self):
        assert initial_state_for_channel(38) == [1, 1, 0, 0, 1, 1, 0]

    def test_channel_0_state(self):
        assert initial_state_for_channel(0) == [1, 0, 0, 0, 0, 0, 0]

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            initial_state_for_channel(40)


class TestWhiteningSequence:
    def test_deterministic_per_channel(self):
        a = whitening_sequence(38, 64).bits
        b = whitening_sequence(38, 64).bits
        assert np.array_equal(a, b)

    def test_channels_differ(self):
        a = whitening_sequence(37, 64).bits
        b = whitening_sequence(38, 64).bits
        assert not np.array_equal(a, b)

    def test_period_127(self):
        bits = whitening_sequence(38, 254).bits
        assert np.array_equal(bits[:127], bits[127:])

    def test_not_constant(self):
        bits = whitening_sequence(39, 127).bits
        assert 0 < bits.sum() < 127

    def test_apply_length_check(self):
        sequence = whitening_sequence(38, 8)
        with pytest.raises(ValueError):
            sequence.apply(np.zeros(16, dtype=np.uint8))

    def test_negative_length(self):
        with pytest.raises(ValueError):
            whitening_sequence(38, -1)


class TestWhiten:
    def test_involution(self):
        data = np.random.default_rng(1).integers(0, 2, 200).astype(np.uint8)
        assert np.array_equal(whiten(whiten(data, 38), 38), data)

    def test_whitening_keystream_recovers_zero_stream(self):
        # Whitening the keystream itself gives all zeros — the single-tone trick.
        keystream = whitening_sequence(38, 96).bits
        assert np.all(whiten(keystream, 38) == 0)

    def test_whitening_complement_gives_ones(self):
        keystream = whitening_sequence(37, 96).bits
        assert np.all(whiten(1 - keystream, 37) == 1)

    @given(st.integers(min_value=0, max_value=39), st.integers(min_value=1, max_value=300))
    def test_property_involution_all_channels(self, channel, length):
        data = np.arange(length, dtype=np.uint64) % 2
        data = data.astype(np.uint8)
        assert np.array_equal(whiten(whiten(data, channel), channel), data)
