"""Tests for the backscatter link budget, geometry helpers and error models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.error_models import (
    ber_dbpsk,
    ber_dqpsk,
    ber_ook_envelope,
    ber_oqpsk_dsss,
    packet_error_rate,
    required_snr_db,
    wifi_packet_error_rate,
)
from repro.channel.geometry import (
    Position,
    distance_feet,
    feet_to_meters,
    fig10_geometry,
    inches_to_meters,
    meters_to_feet,
)
from repro.channel.link_budget import BackscatterLinkBudget, DirectLinkBudget
from repro.exceptions import LinkBudgetError


class TestGeometry:
    def test_feet_meters_roundtrip(self):
        assert meters_to_feet(feet_to_meters(17.0)) == pytest.approx(17.0)

    def test_inches(self):
        assert inches_to_meters(12.0) == pytest.approx(0.3048)

    def test_position_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)

    def test_distance_feet(self):
        assert distance_feet(Position(0, 0), Position(feet_to_meters(10), 0)) == pytest.approx(10.0)

    def test_fig10_geometry(self):
        bluetooth, tag, receiver = fig10_geometry(1.0, 30.0)
        assert meters_to_feet(bluetooth.distance_to(tag)) == pytest.approx(1.0)
        # The receiver is perpendicular to the midpoint.
        assert receiver.x == pytest.approx((bluetooth.x + tag.x) / 2.0)
        assert meters_to_feet(receiver.y) == pytest.approx(30.0)


class TestBackscatterLinkBudget:
    def test_rssi_decreases_with_distance(self):
        budget = BackscatterLinkBudget(source_power_dbm=10.0)
        near = budget.evaluate(0.3, 1.0).rssi_dbm
        far = budget.evaluate(0.3, 20.0).rssi_dbm
        assert near > far

    def test_rssi_increases_with_tx_power(self):
        low = BackscatterLinkBudget(source_power_dbm=0.0).evaluate(0.3, 5.0).rssi_dbm
        high = BackscatterLinkBudget(source_power_dbm=20.0).evaluate(0.3, 5.0).rssi_dbm
        assert high == pytest.approx(low + 20.0, abs=0.1)

    def test_two_hop_product_channel(self):
        # Doubling the first hop distance costs as much as doubling the second
        # (both hops beyond the 1 m path-loss reference distance).
        budget = BackscatterLinkBudget(source_power_dbm=10.0)
        base = budget.evaluate(2.0, 3.0).rssi_dbm
        first = budget.evaluate(4.0, 3.0).rssi_dbm
        second = budget.evaluate(2.0, 6.0).rssi_dbm
        assert first == pytest.approx(second, abs=0.2)
        assert first < base

    def test_tissue_attenuates_both_hops(self):
        bare = BackscatterLinkBudget(source_power_dbm=10.0)
        implanted = BackscatterLinkBudget(source_power_dbm=10.0, tissue="muscle_0_75_inch")
        difference = bare.evaluate(0.1, 2.0).rssi_dbm - implanted.evaluate(0.1, 2.0).rssi_dbm
        from repro.channel.tissue import tissue_attenuation_db

        assert difference == pytest.approx(tissue_attenuation_db("muscle_0_75_inch", passes=2), abs=0.1)

    def test_incident_power_reported(self):
        budget = BackscatterLinkBudget(source_power_dbm=10.0)
        result = budget.evaluate(0.3, 5.0)
        assert result.incident_power_dbm > result.rssi_dbm

    def test_detectable_flag(self):
        budget = BackscatterLinkBudget(source_power_dbm=20.0, receiver_sensitivity_dbm=-94.0)
        assert budget.evaluate(0.3, 1.0).detectable
        assert not budget.evaluate(0.3, 500.0).detectable

    def test_unknown_antenna(self):
        with pytest.raises(LinkBudgetError):
            BackscatterLinkBudget(tag_antenna="dish")

    def test_negative_distance(self):
        with pytest.raises(LinkBudgetError):
            BackscatterLinkBudget().evaluate(-1.0, 1.0)

    def test_rssi_sweep_shape(self):
        budget = BackscatterLinkBudget()
        sweep = budget.rssi_sweep(0.3, np.array([1.0, 5.0, 10.0]))
        assert sweep.size == 3
        assert np.all(np.diff(sweep) < 0)


class TestDirectLinkBudget:
    def test_received_power_decreases(self):
        budget = DirectLinkBudget(tx_power_dbm=15.0)
        assert budget.received_power_dbm(1.0) > budget.received_power_dbm(10.0)

    def test_snr_uses_noise_model(self):
        budget = DirectLinkBudget(tx_power_dbm=15.0)
        assert budget.snr_db(2.0) == pytest.approx(
            budget.received_power_dbm(2.0) - budget.noise.noise_floor_dbm
        )


class TestErrorModels:
    def test_ber_decreases_with_snr(self):
        assert ber_dqpsk(20.0) < ber_dqpsk(5.0) <= 0.5

    def test_all_ber_models_bounded(self):
        for model in (ber_dbpsk, ber_dqpsk, ber_oqpsk_dsss, ber_ook_envelope):
            assert 0.0 <= model(-20.0) <= 0.5
            assert 0.0 <= model(30.0) <= 0.5

    def test_per_increases_with_length(self):
        assert packet_error_rate(1e-4, 2000) > packet_error_rate(1e-4, 100)

    def test_wifi_per_similar_for_2_and_11_mbps_short_payloads(self):
        # The Fig. 11 observation: short payloads + shared 1 Mbps header.
        for snr in (8.0, 10.0, 12.0):
            per2 = wifi_packet_error_rate(snr, rate_mbps=2.0, payload_bytes=31)
            per11 = wifi_packet_error_rate(snr, rate_mbps=11.0, payload_bytes=77)
            assert abs(per2 - per11) < 0.25

    def test_wifi_per_monotonic_in_snr(self):
        pers = [wifi_packet_error_rate(snr, rate_mbps=2.0, payload_bytes=31) for snr in (0, 5, 10, 15)]
        assert all(a >= b for a, b in zip(pers, pers[1:], strict=False))

    def test_required_snr_ordering(self):
        assert required_snr_db(1.0) < required_snr_db(2.0) < required_snr_db(11.0)

    def test_required_snr_paper_values(self):
        # §4.2: 2 Mbps needs ~6 dB; §2.3.1: every rate works below 14 dB.
        assert required_snr_db(2.0) == pytest.approx(6.0)
        assert all(required_snr_db(rate) < 14.0 for rate in (1.0, 2.0, 5.5, 11.0))

    @given(st.floats(min_value=0.0, max_value=0.2), st.integers(min_value=1, max_value=4000))
    def test_property_per_bounds(self, ber, bits):
        per = packet_error_rate(ber, bits)
        assert 0.0 <= per <= 1.0
        # A packet fails at least as often as a single bit (allow float rounding).
        assert per >= ber - 1e-9
