"""Tests for path-loss, noise, antenna and tissue models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.channel.antennas import ANTENNAS
from repro.channel.noise import NoiseModel, thermal_noise_dbm
from repro.channel.propagation import (
    PathLossModel,
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.channel.tissue import TISSUE_PRESETS, TissueLayer, tissue_attenuation_db
from repro.exceptions import LinkBudgetError


class TestFreeSpace:
    def test_known_value_at_one_meter(self):
        # FSPL at 1 m, 2.45 GHz ≈ 40.2 dB.
        assert free_space_path_loss_db(1.0, 2.45e9) == pytest.approx(40.2, abs=0.3)

    def test_six_db_per_distance_doubling(self):
        assert free_space_path_loss_db(20.0) - free_space_path_loss_db(10.0) == pytest.approx(
            6.02, abs=0.05
        )

    def test_near_field_clamped(self):
        assert free_space_path_loss_db(0.0) == free_space_path_loss_db(0.01)

    def test_negative_distance_rejected(self):
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(-1.0)

    @given(st.floats(min_value=0.1, max_value=100.0))
    def test_property_monotonic(self, distance):
        assert free_space_path_loss_db(distance * 2) > free_space_path_loss_db(distance)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        assert log_distance_path_loss_db(1.0) == pytest.approx(free_space_path_loss_db(1.0))

    def test_exponent_controls_slope(self):
        steep = log_distance_path_loss_db(10.0, path_loss_exponent=3.0)
        shallow = log_distance_path_loss_db(10.0, path_loss_exponent=2.0)
        assert steep > shallow

    def test_shadowing_offset(self):
        assert log_distance_path_loss_db(5.0, shadowing_db=7.0) == pytest.approx(
            log_distance_path_loss_db(5.0) + 7.0
        )

    def test_model_with_shadowing_varies(self):
        model = PathLossModel(shadowing_sigma_db=4.0)
        rng = np.random.default_rng(0)
        values = {model.loss_db(10.0, rng=rng) for _ in range(10)}
        assert len(values) > 1

    def test_model_without_shadowing_deterministic(self):
        model = PathLossModel()
        assert model.loss_db(10.0) == model.loss_db(10.0)


class TestNoise:
    def test_thermal_noise_1hz(self):
        # kT at 290 K ≈ -174 dBm/Hz.
        assert thermal_noise_dbm(1.0) == pytest.approx(-174.0, abs=0.2)

    def test_wifi_band_noise_floor(self):
        # 22 MHz: -174 + 73.4 ≈ -100.6 dBm, plus the 6 dB noise figure.
        model = NoiseModel(bandwidth_hz=22e6, noise_figure_db=6.0)
        assert model.noise_floor_dbm == pytest.approx(-94.6, abs=0.5)

    def test_snr(self):
        model = NoiseModel(bandwidth_hz=22e6, noise_figure_db=6.0)
        assert model.snr_db(-60.0) == pytest.approx(34.6, abs=0.5)

    def test_interference_raises_floor(self):
        quiet = NoiseModel(bandwidth_hz=22e6)
        noisy = NoiseModel(bandwidth_hz=22e6, interference_dbm=-70.0)
        assert noisy.noise_floor_dbm > quiet.noise_floor_dbm

    def test_invalid_bandwidth(self):
        with pytest.raises(LinkBudgetError):
            thermal_noise_dbm(0.0)


class TestAntennasTissue:
    def test_paper_antennas_present(self):
        assert {"monopole_2dbi", "contact_lens_loop", "neural_implant_loop"} <= set(ANTENNAS)

    def test_small_antennas_have_negative_gain(self):
        assert ANTENNAS["contact_lens_loop"].gain_dbi < 0
        assert ANTENNAS["neural_implant_loop"].gain_dbi < 0

    def test_loop_antennas_not_50_ohm(self):
        assert ANTENNAS["contact_lens_loop"].impedance_ohm != 50.0 + 0.0j

    def test_tissue_presets(self):
        assert {"contact_lens_saline", "muscle_0_75_inch"} <= set(TISSUE_PRESETS)

    def test_two_pass_attenuation_doubles(self):
        one = tissue_attenuation_db("muscle_0_75_inch", passes=1)
        two = tissue_attenuation_db("muscle_0_75_inch", passes=2)
        assert two == pytest.approx(2 * one)

    def test_custom_layer(self):
        layer = TissueLayer(name="custom", attenuation_db_per_cm=5.0, thickness_cm=2.0, interface_loss_db=1.0)
        assert layer.one_way_loss_db == pytest.approx(11.0)

    def test_unknown_preset(self):
        with pytest.raises(LinkBudgetError):
            tissue_attenuation_db("bone")
