"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(2016)
