"""Tests for the OFDM AM downlink and the tag device model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backscatter.detector import PeakDetectorReceiver
from repro.core.device import DeviceState, InterscatterDevice
from repro.core.downlink import InterscatterDownlink
from repro.core.timing import InterscatterTiming
from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.scrambler_seeds import FixedSeedModel, RandomSeedModel


class TestDownlinkWaveform:
    def test_clean_waveform_decodes(self, rng):
        downlink = InterscatterDownlink(seed_model=FixedSeedModel(0x2B), rng=rng)
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        result = downlink.transmit_waveform(bits)
        assert result.bit_errors == 0
        assert result.seed_predicted_correctly

    def test_noisy_waveform_mostly_decodes(self, rng):
        downlink = InterscatterDownlink(seed_model=FixedSeedModel(0x2B), rng=rng)
        bits = rng.integers(0, 2, 40).astype(np.uint8)
        result = downlink.transmit_waveform(bits, snr_db=20.0)
        assert result.bit_error_rate < 0.1

    def test_unpredictable_seed_garbles_downlink(self, rng):
        downlink = InterscatterDownlink(seed_model=RandomSeedModel(rng), rng=rng)
        bits = np.ones(32, dtype=np.uint8)
        result = downlink.transmit_waveform(bits)
        # Crafting for the wrong seed destroys the constant symbols, so the
        # ones are no longer reliably detected.
        if not result.seed_predicted_correctly:
            assert result.bit_error_rate > 0.2

    def test_incrementing_seed_model_stays_synchronised(self, rng):
        downlink = InterscatterDownlink(rng=rng)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        for _ in range(3):
            result = downlink.transmit_waveform(bits)
            assert result.seed_predicted_correctly
            assert result.bit_errors == 0

    def test_bit_rate(self, rng):
        downlink = InterscatterDownlink(rng=rng)
        result = downlink.transmit_waveform(np.array([1, 0], dtype=np.uint8))
        assert result.bit_rate_bps == 125e3


class TestDownlinkLink:
    def test_ber_increases_with_distance(self):
        downlink = InterscatterDownlink()
        near, _ = downlink.link_bit_error_rate(1.0)
        far, _ = downlink.link_bit_error_rate(15.0)
        assert near <= far

    def test_below_sensitivity_is_coin_flip(self):
        downlink = InterscatterDownlink(
            peak_detector=PeakDetectorReceiver(sensitivity_dbm=-32.0)
        )
        ber, rssi = downlink.link_bit_error_rate(100.0)
        assert rssi < -32.0
        assert ber == 0.5

    def test_simulate_link_statistics(self, rng):
        downlink = InterscatterDownlink(rng=rng)
        bits = rng.integers(0, 2, 400).astype(np.uint8)
        result = downlink.simulate_link(bits, 2.0, rng=rng)
        assert result.bit_error_rate < 0.05
        assert result.rssi_dbm is not None


class TestDeviceModel:
    def test_successful_opportunity(self):
        device = InterscatterDevice(rng=np.random.default_rng(0))
        opportunity = device.service_advertisement()
        assert opportunity.detected
        assert opportunity.fits_in_window
        assert opportunity.energy_uj > 0.0
        assert device.state is DeviceState.IDLE

    def test_energy_accumulates(self):
        device = InterscatterDevice(rng=np.random.default_rng(0))
        for _ in range(5):
            device.service_advertisement()
        assert device.total_energy_uj > 0.0
        assert len(device.opportunities) == 5

    def test_missed_detection_consumes_little_energy(self):
        device = InterscatterDevice(
            detection_probability=0.0, rng=np.random.default_rng(0)
        )
        opportunity = device.service_advertisement()
        assert not opportunity.detected
        assert opportunity.energy_uj < 0.01

    def test_oversized_packet_does_not_fit(self):
        device = InterscatterDevice(rng=np.random.default_rng(0))
        opportunity = device.service_advertisement(wifi_psdu_bytes=500)
        assert not opportunity.fits_in_window

    def test_average_power_far_below_active_radio(self):
        device = InterscatterDevice(rng=np.random.default_rng(0))
        # Duty-cycled over a 20 ms advertising interval the average power is
        # a tiny fraction of the 28 µW active figure.
        assert device.average_power_uw(0.02) < 2.0

    def test_higher_rate_lowers_average_power(self):
        slow = InterscatterDevice(InterscatterTiming(wifi_rate_mbps=2.0), rng=np.random.default_rng(0))
        fast = InterscatterDevice(InterscatterTiming(wifi_rate_mbps=11.0), rng=np.random.default_rng(0))
        # Same bytes take less air time at 11 Mbps... compare at equal payload.
        slow_power = slow.power_breakdown().total_uw
        fast_power = fast.power_breakdown().total_uw
        assert fast_power == pytest.approx(slow_power, rel=0.15)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            InterscatterDevice(detection_jitter_s=-1.0)
        with pytest.raises(ConfigurationError):
            InterscatterDevice(detection_probability=1.5)
        with pytest.raises(ConfigurationError):
            InterscatterDevice().average_power_uw(0.0)
