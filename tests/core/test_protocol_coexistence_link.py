"""Tests for the protocol scheduler, coexistence model and the link façade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coexistence import CoexistenceSimulator
from repro.core.link import InterscatterLink
from repro.core.protocol import QueryReplyProtocol, ReservationStrategy
from repro.core.uplink import UplinkTarget
from repro.exceptions import ConfigurationError


class TestProtocol:
    def test_advertisement_timeline_spans_three_channels(self):
        protocol = QueryReplyProtocol()
        events = protocol.advertisement_event_timeline()
        assert [e.kind for e in events] == ["ble_adv_ch37", "ble_adv_ch38", "ble_adv_ch39"]
        assert events[1].time_s - events[0].time_s >= protocol.inter_channel_gap_s

    def test_reservation_window_formula(self):
        protocol = QueryReplyProtocol()
        # 2ΔT + T_bluetooth (§2.3.3).
        t_bluetooth = protocol.timing.ble_payload_duration_s + 80e-6
        assert protocol.reservation_window_s() == pytest.approx(
            2 * protocol.inter_channel_gap_s + t_bluetooth
        )

    def test_rts_cts_bootstraps_then_protects(self):
        protocol = QueryReplyProtocol(
            strategy=ReservationStrategy.RTS_CTS, contention_probability=0.0
        )
        events, reservation = protocol.schedule_exchange(rng=np.random.default_rng(0))
        kinds = [e.kind for e in events]
        assert "rts" in kinds and "cts" in kinds
        assert reservation is not None
        data = [e for e in events if e.kind == "backscatter_data"]
        assert data and all(e.success for e in data)

    def test_protected_strategies_beat_no_protection(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        unprotected = QueryReplyProtocol(
            strategy=ReservationStrategy.NONE, contention_probability=0.4
        ).delivery_statistics(num_exchanges=200, rng=rng_a)
        protected = QueryReplyProtocol(
            strategy=ReservationStrategy.RTS_CTS, contention_probability=0.4
        ).delivery_statistics(num_exchanges=200, rng=rng_b)
        assert protected["delivery_ratio"] > unprotected["delivery_ratio"]

    def test_cts_to_self_protects_everything(self):
        stats = QueryReplyProtocol(
            strategy=ReservationStrategy.CTS_TO_SELF, contention_probability=0.5
        ).delivery_statistics(num_exchanges=50, rng=np.random.default_rng(0))
        assert stats["delivery_ratio"] == pytest.approx(1.0)

    def test_query_reply_round_scales_with_tags(self):
        protocol = QueryReplyProtocol(contention_probability=0.0)
        one = protocol.query_reply_round(1, rng=np.random.default_rng(0))
        four = protocol.query_reply_round(4, rng=np.random.default_rng(0))
        assert four["round_latency_s"] == pytest.approx(4 * one["per_tag_latency_s"], rel=0.01)

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            QueryReplyProtocol(contention_probability=1.5)
        with pytest.raises(ConfigurationError):
            QueryReplyProtocol().query_reply_round(0)


class TestCoexistence:
    def test_baseline_unaffected(self):
        simulator = CoexistenceSimulator(baseline_throughput_mbps=20.0)
        assert simulator.evaluate("baseline", 1000.0).iperf_throughput_mbps == pytest.approx(20.0)

    def test_low_rate_negligible_for_both(self):
        simulator = CoexistenceSimulator()
        ssb = simulator.evaluate("single_sideband", 50.0).iperf_throughput_mbps
        dsb = simulator.evaluate("double_sideband", 50.0).iperf_throughput_mbps
        assert ssb > 0.9 * simulator.baseline_throughput_mbps
        assert dsb > 0.8 * simulator.baseline_throughput_mbps

    def test_dsb_collapses_at_high_rate(self):
        simulator = CoexistenceSimulator()
        dsb = simulator.evaluate("double_sideband", 1000.0).iperf_throughput_mbps
        ssb = simulator.evaluate("single_sideband", 1000.0).iperf_throughput_mbps
        assert dsb < 0.3 * simulator.baseline_throughput_mbps
        assert ssb > 0.9 * simulator.baseline_throughput_mbps

    def test_sweep_covers_paper_rates(self):
        results = CoexistenceSimulator().sweep()
        rates = {r.backscatter_rate_pps for r in results if r.scenario != "baseline"}
        assert rates == {50.0, 650.0, 1000.0}

    def test_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            CoexistenceSimulator().evaluate("quad_sideband", 100.0)


class TestInterscatterLink:
    def test_statistical_exchange(self):
        link = InterscatterLink(wifi_rate_mbps=2.0, rng=np.random.default_rng(0))
        result = link.transmit(b"hello", query_bits=np.array([1, 0, 1], dtype=np.uint8))
        assert result.crc_ok
        assert result.downlink is not None
        assert result.tag_energy_uj > 0.0

    def test_waveform_exchange(self):
        link = InterscatterLink(use_waveform_pipeline=True, rng=np.random.default_rng(0))
        result = link.transmit(b"waveform path")
        assert result.crc_ok
        assert result.uplink.payload == b"waveform path"

    def test_oversized_payload_rejected(self):
        link = InterscatterLink(wifi_rate_mbps=2.0)
        with pytest.raises(ConfigurationError):
            link.transmit(b"x" * 60)

    def test_empty_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            InterscatterLink().transmit(b"")

    def test_rssi_and_per_helpers(self):
        link = InterscatterLink(bluetooth_power_dbm=20.0, rng=np.random.default_rng(0))
        assert link.rssi_at(10.0) > link.rssi_at(60.0)
        assert link.packet_error_rate_at(60.0) >= link.packet_error_rate_at(10.0)

    def test_zigbee_target(self):
        link = InterscatterLink(target=UplinkTarget.ZIGBEE_802154, rng=np.random.default_rng(0))
        result = link.transmit(b"zigbee hello")
        assert result.uplink.target is UplinkTarget.ZIGBEE_802154
