"""Tests for the Bluetooth tone source and the packet-in-packet timing model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.timing import (
    InterscatterTiming,
    max_wifi_payload_bytes,
)
from repro.core.tone_source import BluetoothToneSource
from repro.exceptions import ConfigurationError
from repro.utils.spectrum import occupied_bandwidth, power_spectral_density


class TestBluetoothToneSource:
    def test_tone_parameters(self):
        source = BluetoothToneSource("ti_cc2650", channel_index=38, tx_power_dbm=4.0)
        tone = source.tone_parameters()
        assert tone.channel_index == 38
        assert tone.center_frequency_hz == pytest.approx(2.426e9)
        assert tone.tx_power_dbm == 4.0
        # Tone sits ~+250 kHz from the centre (plus small device offset).
        assert tone.tone_frequency_hz - tone.center_frequency_hz == pytest.approx(250e3, abs=20e3)

    def test_tone_duration_matches_payload(self):
        source = BluetoothToneSource(payload_length=31)
        assert source.tone_parameters().duration_s == pytest.approx(248e-6)

    def test_tone_bit_zero_gives_negative_offset(self):
        source = BluetoothToneSource(tone_bit=0)
        tone = source.tone_parameters()
        assert tone.tone_frequency_hz < tone.center_frequency_hz

    def test_transmitted_payload_window_is_narrowband(self):
        source = BluetoothToneSource("ti_cc2650", rng=np.random.default_rng(0))
        transmission = source.transmit()
        spectrum = power_spectral_density(transmission.payload_waveform, source.sample_rate_hz)
        assert occupied_bandwidth(spectrum) < 400e3

    def test_random_transmission_is_wideband(self):
        source = BluetoothToneSource("ti_cc2650", rng=np.random.default_rng(0))
        transmission = source.transmit_random()
        spectrum = power_spectral_density(transmission.payload_waveform, source.sample_rate_hz)
        assert occupied_bandwidth(spectrum) > 500e3


class TestInterscatterTiming:
    def test_paper_packet_sizes(self):
        assert max_wifi_payload_bytes(2.0) == 38
        assert max_wifi_payload_bytes(5.5) == 104
        assert max_wifi_payload_bytes(11.0) == 209

    def test_backscatter_window(self):
        timing = InterscatterTiming(guard_interval_s=4e-6)
        assert timing.ble_payload_duration_s == pytest.approx(248e-6)
        assert timing.backscatter_window_s == pytest.approx(244e-6)

    def test_guard_interval_shrinks_budget(self):
        without = InterscatterTiming(guard_interval_s=0.0).max_wifi_psdu_bytes()
        with_guard = InterscatterTiming(guard_interval_s=4e-6).max_wifi_psdu_bytes()
        assert with_guard <= without

    def test_long_preamble_leaves_little_room(self):
        long_preamble = InterscatterTiming(short_plcp_preamble=False, guard_interval_s=0.0)
        short_preamble = InterscatterTiming(short_plcp_preamble=True, guard_interval_s=0.0)
        assert long_preamble.max_wifi_psdu_bytes() < short_preamble.max_wifi_psdu_bytes()

    def test_one_mbps_cannot_use_short_preamble(self):
        with pytest.raises(ConfigurationError):
            InterscatterTiming(wifi_rate_mbps=1.0, short_plcp_preamble=True)

    def test_fits_helper(self):
        timing = InterscatterTiming(wifi_rate_mbps=2.0, guard_interval_s=0.0)
        assert timing.fits(38)
        assert not timing.fits(39)
        assert not timing.fits(0)

    def test_air_time_within_window(self):
        timing = InterscatterTiming(wifi_rate_mbps=11.0, guard_interval_s=0.0)
        assert timing.wifi_air_time_s(timing.max_wifi_psdu_bytes()) <= timing.ble_payload_duration_s

    def test_payload_with_mac_overhead(self):
        timing = InterscatterTiming(wifi_rate_mbps=2.0, guard_interval_s=0.0)
        assert timing.max_wifi_payload_bytes(mac_overhead_bytes=28) == 38 - 28

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            InterscatterTiming(wifi_rate_mbps=3.0)

    def test_invalid_payload_length(self):
        with pytest.raises(ConfigurationError):
            InterscatterTiming(ble_payload_bytes=0)
