"""Tests for the interscatter uplink (Wi-Fi and ZigBee synthesis)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.uplink import InterscatterUplink, UplinkTarget
from repro.exceptions import ConfigurationError


class TestConfiguration:
    def test_default_channel_plan(self):
        uplink = InterscatterUplink()
        assert uplink.ble_frequency_mhz == 2426.0
        assert uplink.output_frequency_mhz == 2462.0
        # The paper's implementation uses a 35.75 MHz shift for this plan (§3).
        assert uplink.shift_hz == pytest.approx(35.75e6)

    def test_zigbee_channel_plan(self):
        uplink = InterscatterUplink(UplinkTarget.ZIGBEE_802154)
        assert uplink.output_frequency_mhz == 2420.0
        assert uplink.shift_hz == pytest.approx(-6e6)

    def test_custom_output_channel_exact_shift(self):
        uplink = InterscatterUplink(output_channel=1)
        assert uplink.shift_hz == pytest.approx((2412.0 - 2426.0) * 1e6)

    def test_invalid_sideband(self):
        with pytest.raises(ConfigurationError):
            InterscatterUplink(sideband="triple")

    def test_invalid_frame_style(self):
        with pytest.raises(ConfigurationError):
            InterscatterUplink(frame_style="jumbo")

    def test_target_from_string(self):
        assert InterscatterUplink("zigbee").target is UplinkTarget.ZIGBEE_802154


class TestWaveformPipeline:
    @pytest.mark.parametrize("rate", [2.0, 11.0])
    def test_wifi_synthesis_decodes(self, rate):
        uplink = InterscatterUplink(wifi_rate_mbps=rate)
        result = uplink.simulate_waveform(b"backscattered wifi", snr_db=30.0)
        assert result.crc_ok
        assert result.payload == b"backscattered wifi"
        assert result.target is UplinkTarget.WIFI_80211B

    def test_wifi_synthesis_full_data_frame(self):
        uplink = InterscatterUplink(frame_style="data")
        result = uplink.simulate_waveform(b"full MPDU payload", snr_db=30.0)
        assert result.crc_ok
        assert result.payload == b"full MPDU payload"

    def test_zigbee_synthesis_decodes(self):
        uplink = InterscatterUplink(UplinkTarget.ZIGBEE_802154)
        result = uplink.simulate_waveform(b"zigbee payload", snr_db=25.0)
        assert result.crc_ok
        assert result.payload == b"zigbee payload"

    def test_noise_free_decode(self):
        uplink = InterscatterUplink()
        result = uplink.simulate_waveform(b"clean", snr_db=None)
        assert result.crc_ok

    def test_very_low_snr_fails(self):
        uplink = InterscatterUplink(rng=np.random.default_rng(1))
        result = uplink.simulate_waveform(b"hopeless", snr_db=-20.0)
        assert not result.crc_ok

    def test_double_sideband_also_decodes(self):
        # DSB still synthesizes a valid packet — its problem is the wasted
        # mirror spectrum, not decodability of the wanted copy.
        uplink = InterscatterUplink(sideband="double")
        result = uplink.simulate_waveform(b"dsb packet", snr_db=30.0)
        assert result.crc_ok


class TestLinkPipeline:
    def test_close_link_delivers(self):
        uplink = InterscatterUplink(rng=np.random.default_rng(0))
        result = uplink.simulate_link(
            source_power_dbm=10.0, source_to_tag_m=0.3, tag_to_receiver_m=2.0
        )
        assert result.crc_ok
        assert result.packet_error_rate < 0.05

    def test_far_link_fails(self):
        uplink = InterscatterUplink(rng=np.random.default_rng(0))
        result = uplink.simulate_link(
            source_power_dbm=0.0, source_to_tag_m=1.0, tag_to_receiver_m=200.0
        )
        assert not result.crc_ok

    def test_rssi_monotonic_in_distance(self):
        uplink = InterscatterUplink()
        rssis = [
            uplink.simulate_link(
                source_power_dbm=10.0, source_to_tag_m=0.3, tag_to_receiver_m=d
            ).rssi_dbm
            for d in (1.0, 5.0, 20.0)
        ]
        assert rssis[0] > rssis[1] > rssis[2]

    def test_zigbee_link(self):
        uplink = InterscatterUplink(UplinkTarget.ZIGBEE_802154, rng=np.random.default_rng(0))
        result = uplink.simulate_link(
            source_power_dbm=0.0, source_to_tag_m=0.6, tag_to_receiver_m=3.0
        )
        assert result.packet_error_rate is not None
