"""Tests for the coded-OFDM hard-vs-soft sweep experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.coded_ofdm import _crossing_snr_db, run, summarize
from repro.exceptions import ConfigurationError


class TestSoftGainAcceptance:
    def test_soft_gain_at_least_1p5_db_at_per_1e2(self):
        """The PR's headline claim: soft-decision Viterbi buys >= 1.5 dB at PER 1e-2.

        Coding theory puts the asymptotic soft-vs-hard gap near 2 dB for the
        K=7 802.11 code; we assert a conservative floor with margin for the
        reduced trial budget.
        """
        result = run(snr_start_db=3.0, snr_stop_db=9.0, snr_step_db=1.0, trials=600, seed=2016)
        assert not np.isnan(result.soft_gain_db)
        assert result.soft_gain_db >= 1.5
        # Paired realisations: soft never does worse anywhere on the grid.
        assert np.all(result.soft_error_rate <= result.hard_error_rate)

    def test_scalar_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine not supported"):
            run(engine="scalar")

    def test_invalid_snr_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="snr_stop_db"):
            run(snr_stop_db=-1.0)
        with pytest.raises(ConfigurationError, match="snr_step_db"):
            run(snr_step_db=0.0)


class TestCrossingInterpolation:
    def test_interpolates_between_bracketing_points(self):
        snr = np.array([0.0, 1.0, 2.0])
        rates = np.array([1.0, 0.1, 0.001])
        crossing = _crossing_snr_db(snr, rates, 0.01, floor=1e-6)
        assert 1.0 < crossing < 2.0

    def test_nan_when_never_crossed(self):
        snr = np.array([0.0, 1.0])
        rates = np.array([0.9, 0.5])
        assert np.isnan(_crossing_snr_db(snr, rates, 0.01, floor=1e-6))

    def test_first_point_already_below_target(self):
        snr = np.array([3.0, 4.0])
        rates = np.array([0.001, 0.0001])
        assert _crossing_snr_db(snr, rates, 0.01, floor=1e-6) == 3.0

    def test_zero_rates_floored_not_infinite(self):
        snr = np.array([0.0, 1.0, 2.0])
        rates = np.array([0.5, 0.02, 0.0])
        crossing = _crossing_snr_db(snr, rates, 0.01, floor=1e-3)
        assert np.isfinite(crossing)


class TestSummary:
    def test_summary_reports_gain(self):
        result = run(snr_start_db=3.0, snr_stop_db=9.0, snr_step_db=1.5, trials=300, seed=2016)
        lines = summarize(result)
        assert any("soft-decision gain" in line for line in lines)
        assert any("theory" in line for line in lines)

    def test_summary_handles_never_crossed(self):
        # A grid stopping well before the waterfall never reaches PER 1e-2.
        result = run(snr_start_db=0.0, snr_stop_db=2.0, snr_step_db=1.0, trials=100, seed=2016)
        assert np.isnan(result.soft_gain_db) or result.soft_gain_db == result.soft_gain_db
        lines = summarize(result)
        assert lines
