"""Qualitative checks on every experiment driver.

Each test asserts the paper's headline finding for that table/figure — the
shape of the result, not the absolute numbers (our substrate is a
simulation, not the authors' testbed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    fig06_sideband,
    fig09_single_tone,
    fig10_rssi,
    fig11_per,
    fig12_coexistence,
    fig13_downlink_ber,
    fig14_zigbee_rssi,
    fig15_contact_lens,
    fig16_neural_implant,
    fig17_card_to_card,
    mac_density,
    mac_scaling,
    table_packet_sizes,
    table_power,
)


class TestFig06:
    def test_ssb_suppresses_mirror_dsb_does_not(self):
        result = fig06_sideband.run()
        assert result.ssb_image_rejection_db > 10.0
        assert abs(result.dsb_image_rejection_db) < 3.0


class TestFig09:
    def test_single_tone_on_all_three_devices(self):
        result = fig09_single_tone.run()
        assert set(result.devices) == {"ti_cc2650", "galaxy_s5", "moto360"}
        for device in result.devices.values():
            # Crafted payload collapses the ~1-2 MHz BLE signal into a tone.
            assert device.tone_bandwidth_hz < device.random_bandwidth_hz / 3.0
            assert device.tone_peak_offset_hz == pytest.approx(250e3, abs=60e3)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_rssi.run(step_feet=5.0)

    def test_higher_power_more_rssi(self, result):
        weak = result.curve(0.0, 1.0)
        strong = result.curve(20.0, 1.0)
        assert np.all(strong.rssi_dbm > weak.rssi_dbm)

    def test_20dbm_reaches_about_90_feet(self, result):
        assert result.curve(20.0, 1.0).range_feet >= 80.0

    def test_closer_bluetooth_gives_more_range(self, result):
        assert result.curve(10.0, 1.0).range_feet >= result.curve(10.0, 3.0).range_feet

    def test_rssi_monotonically_decreasing(self, result):
        curve = result.curve(10.0, 1.0)
        assert np.all(np.diff(curve.rssi_dbm) < 0)


class TestFig11:
    def test_rates_have_similar_per(self):
        result = fig11_per.run(num_locations=30, num_packets=100, tx_power_dbm=0.0)
        # The two rates behave similarly across the deployment: identical at
        # most locations (good RSSI), diverging only in the narrow cliff
        # region, so the typical (median) PERs coincide and the mean gap is
        # bounded.
        assert abs(result.median_per[2.0] - result.median_per[11.0]) < 0.1
        assert result.mean_rate_gap < 0.3
        # Some locations show high loss (the >30 % tail the paper mentions).
        assert np.max(result.per_by_rate[2.0]) > 0.1


class TestFig12:
    def test_paper_findings(self):
        result = fig12_coexistence.run()
        baseline = result.baseline_mbps
        # 50 pkt/s: negligible impact for both designs.
        assert result.throughput("double_sideband", 50.0) > 0.8 * baseline
        # 650-1000 pkt/s: DSB collapses the flow, SSB does not.
        assert result.throughput("double_sideband", 1000.0) < 0.3 * baseline
        assert result.throughput("single_sideband", 1000.0) > 0.9 * baseline


class TestFig13:
    def test_low_ber_out_to_about_18_feet(self):
        result = fig13_downlink_ber.run()
        assert 14.0 <= result.range_below_1pct_feet <= 24.0
        # Beyond the cliff the BER rises sharply.
        assert result.ber[-1] > 0.2


class TestFig14:
    def test_rssi_distribution(self):
        result = fig14_zigbee_rssi.run()
        assert result.detectable_fraction > 0.9
        assert -95.0 < result.median_rssi_dbm < -55.0
        values, fractions = result.cdf
        assert np.all(np.diff(values) >= 0)
        assert fractions[-1] == pytest.approx(1.0)


class TestFig15:
    def test_contact_lens_range(self):
        result = fig15_contact_lens.run()
        assert result.range_by_power[20.0] >= 24.0
        assert result.range_by_power[20.0] >= result.range_by_power[10.0]
        for rssi in result.rssi_by_power.values():
            assert np.all(np.diff(rssi) < 0)


class TestFig16:
    def test_neural_implant_range(self):
        result = fig16_neural_implant.run()
        # Tens of inches — far beyond the 1-2 cm of prior implant readers.
        assert result.range_by_power[10.0] >= 10.0
        assert result.range_by_power[20.0] >= result.range_by_power[10.0]


class TestFig17:
    def test_card_to_card_range(self):
        result = fig17_card_to_card.run(messages_per_point=50)
        assert 20.0 <= result.usable_range_inches <= 36.0
        assert np.all(np.diff(result.analytic_ber) >= 0)


class TestTables:
    def test_power_budget(self):
        result = table_power.run()
        reference = result.reference
        assert reference.total_uw == pytest.approx(28.0, abs=0.1)
        for key, value in table_power.PAPER_POWER_UW.items():
            if key != "total_uw":
                assert getattr(reference, key) == pytest.approx(value, abs=0.01)
        assert result.savings_vs_active["zigbee_active_tx"] > 500.0

    def test_packet_sizes(self):
        result = table_packet_sizes.run()
        assert result.max_psdu_bytes == table_packet_sizes.PAPER_PACKET_SIZES
        assert not result.one_mbps_fits
        assert result.goodput_bps[11.0] > result.goodput_bps[2.0]


class TestMacScaling:
    def test_sweep_shapes_and_contention(self):
        result = mac_scaling.run(
            fleet_sizes=(1, 30), macs=("aloha", "tdma"), duration_s=1.0
        )
        assert result.macs == ("aloha", "tdma")
        for series in (result.delivery_ratio, result.throughput_bps, result.attempt_per):
            assert set(series) == {"aloha", "tdma"}
            assert all(v.shape == (2,) for v in series.values())
        # Contention costs ALOHA attempts; polling stays collision-free.
        assert result.attempt_per["aloha"][1] > result.attempt_per["aloha"][0]
        assert result.attempt_per["tdma"][1] < 0.05
        assert result.utilization["aloha"][1] > result.utilization["aloha"][0]


class TestMacDensity:
    @pytest.fixture(scope="class")
    def result(self):
        return mac_density.run(
            densities=(5, 25, 75), macs=("aloha", "tdma"), period_s=0.005, duration_s=1.0
        )

    def test_sweep_shapes(self, result):
        assert result.macs == ("aloha", "tdma")
        for series in (result.delivery_ratio, result.throughput_bps, result.utilization):
            assert set(series) == {"aloha", "tdma"}
            assert all(v.shape == (3,) for v in series.values())

    def test_random_access_collapses_polling_degrades_gracefully(self, result):
        aloha = result.delivery_ratio["aloha"]
        tdma = result.delivery_ratio["tdma"]
        assert aloha[0] > 0.9 > aloha[-1]
        assert tdma[-1] > aloha[-1]

    def test_driver_hooks_cover_every_mac(self, result):
        lines = mac_density.summarize(result)
        assert len(lines) == len(result.macs) + 1
        scalars = mac_density.metrics(result)
        assert set(scalars) == {"delivery_aloha", "delivery_tdma", "utilization_aloha", "utilization_tdma"}
        figure = mac_density.plot(result)
        assert len(figure.series) == len(result.macs)

    def test_contention_knobs_reach_the_epoch_mac(self):
        strict = mac_density.run(
            densities=(25,), macs=("aloha",), period_s=0.005, duration_s=0.5, max_attempts=1
        )
        lax = mac_density.run(
            densities=(25,), macs=("aloha",), period_s=0.005, duration_s=0.5, max_attempts=8
        )
        # A deeper retry ladder means strictly more attempts on a saturated channel.
        assert lax.attempt_per["aloha"][0] != strict.attempt_per["aloha"][0]

    def test_heap_engine_is_not_in_the_capability_table(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            mac_density.run(densities=(5,), macs=("aloha",), duration_s=0.2, engine="scalar")
