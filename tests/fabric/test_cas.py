"""Content-addressed cache keys: normalization, policies, runner resume.

The fabric's caching contract: a whitespace/comment-only driver refactor
keeps every cache entry warm, any behavioural edit invalidates, and
``--refresh`` (resume off) re-executes regardless.  The runner tests
drive the real :class:`~repro.api.Runner` against a real store with the
driver source monkeypatched, so the end-to-end resume path is what's
under test — not just the hash function.
"""

from __future__ import annotations

import pytest

from repro.api import ResultStore, Runner
from repro.api.spec import ExperimentSpec
from repro.api.store import document_content_key, invocation_key
from repro.exceptions import ConfigurationError
from repro.fabric import cas

_SOURCE = "def run(x):\n    return x + 1\n"
_SOURCE_REFLOWED = "# a comment\n\ndef run(x):\n\n    # another comment\n    return x + 1\n"
_SOURCE_EDITED = "def run(x):\n    return x + 2\n"


class TestNormalizedSourceDigest:
    def test_comment_and_whitespace_changes_do_not_shift_the_digest(self):
        assert cas.normalized_source_digest(_SOURCE) == cas.normalized_source_digest(_SOURCE_REFLOWED)

    def test_behavioural_edit_shifts_the_digest(self):
        assert cas.normalized_source_digest(_SOURCE) != cas.normalized_source_digest(_SOURCE_EDITED)

    def test_unparseable_source_raises(self):
        with pytest.raises(ConfigurationError, match="cannot normalize"):
            cas.normalized_source_digest("def run(:\n")


class TestPolicies:
    def test_known_policies_pass_through(self):
        for policy in cas.CACHE_POLICIES:
            assert cas.check_policy(policy) == policy

    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError, match="unknown cache policy"):
            cas.check_policy("always")

    def test_runner_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown cache policy"):
            Runner(cache="always")


class TestContentKey:
    def test_differs_from_invocation_key_and_tracks_source(self):
        invocation = invocation_key("fig13", "batch", None, {"step_feet": 2.0})
        source_a = cas.normalized_source_digest(_SOURCE)
        source_b = cas.normalized_source_digest(_SOURCE_EDITED)
        key_a = cas.content_key("fig13", "batch", None, {"step_feet": 2.0}, source_hash=source_a)
        key_b = cas.content_key("fig13", "batch", None, {"step_feet": 2.0}, source_hash=source_b)
        assert key_a != invocation
        assert key_a != key_b

    def test_backend_participates_only_when_present(self):
        base = cas.content_key("mc", "batch", 7, {}, source_hash="s")
        with_backend = cas.content_key("mc", "batch", 7, {}, backend="numpy", source_hash="s")
        assert base != with_backend

    def test_registered_driver_hashes(self):
        spec = ExperimentSpec(experiment="fig13")
        digest = cas.driver_source_hash(spec.resolve())
        assert isinstance(digest, str) and len(digest) == 64

    def test_unavailable_source_is_uncacheable_not_fatal(self, monkeypatch):
        def boom(module_name):
            raise OSError("no source")

        monkeypatch.setattr(cas, "module_source", boom)
        assert cas.driver_source_hash(ExperimentSpec(experiment="fig13").resolve()) is None


class TestDocumentContentKey:
    def test_envelope_without_source_hash_has_no_content_key(self):
        result = Runner(telemetry=False).run("fig13", params={"step_feet": 4.0})
        document = result.to_dict()
        assert document_content_key(document) is not None
        document.pop("source_hash")
        assert document_content_key(document) is None


def _spec():
    return [ExperimentSpec(experiment="fig13", params={"step_feet": 4.0}, engine="batch")]


def _run(runner, store, **kwargs):
    """Run the one-spec batch and return the was-cached flag."""
    flags = []
    runner.run_batch(_spec(), store=store, on_result=lambda i, r, c: flags.append(c), **kwargs)
    return flags[0]


class TestContentResume:
    def test_comment_refactor_hits_behavioural_edit_misses(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        runner = Runner(telemetry=False, cache="content")
        monkeypatch.setattr(cas, "module_source", lambda name: _SOURCE)
        assert _run(runner, store) is False  # cold store executes
        assert _run(runner, store) is True  # identical source hits
        monkeypatch.setattr(cas, "module_source", lambda name: _SOURCE_REFLOWED)
        assert _run(runner, store) is True  # comment/whitespace-only refactor still hits
        monkeypatch.setattr(cas, "module_source", lambda name: _SOURCE_EDITED)
        assert _run(runner, store) is False  # behavioural edit misses and re-executes

    def test_invocation_policy_is_blind_to_source(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        runner = Runner(telemetry=False, cache="invocation")
        monkeypatch.setattr(cas, "module_source", lambda name: _SOURCE)
        assert _run(runner, store) is False
        monkeypatch.setattr(cas, "module_source", lambda name: _SOURCE_EDITED)
        assert _run(runner, store) is True

    def test_cache_off_and_refresh_always_re_execute(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert _run(Runner(telemetry=False, cache="off"), store) is False
        assert _run(Runner(telemetry=False, cache="off"), store) is False
        # resume=False is the CLI's --refresh: content policy, forced re-run.
        assert _run(Runner(telemetry=False, cache="content"), store, resume=False) is False

    def test_unhashable_driver_fails_safe_to_re_execution(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        runner = Runner(telemetry=False, cache="content")

        def boom(module_name):
            raise OSError("no source")

        monkeypatch.setattr(cas, "module_source", boom)
        assert _run(runner, store) is False
        assert _run(runner, store) is False  # never a false hit

    def test_pre_fabric_envelopes_are_content_misses_but_invocation_hits(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        result = Runner(telemetry=False).run(_spec()[0])
        document = result.to_dict()
        document.pop("source_hash")  # an envelope from before the fabric existed
        store.append_document(document)
        assert _run(Runner(telemetry=False, cache="invocation"), store) is True
        assert _run(Runner(telemetry=False, cache="content"), store) is False


class TestImportOrder:
    def test_fabric_imports_standalone_before_the_api_package(self):
        # runner.py and fabric.cas import each other's packages; a fresh
        # interpreter that touches repro.fabric first must not trip the
        # cycle (tests import repro.api first, which hides it).
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-c", "import repro.fabric; import repro.api"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
