"""End-to-end CLI tests of the distributed campaign fabric.

The headline acceptance check lives here: running a grid serially and
running it as four shard slices (merged back through manifests) produce
**byte-identical** ``EXPERIMENTS.md`` documents.  Plus the satellite CLI
surfaces: ``merge --json``, multi-``--specs`` concatenation, campaign
cache counters in ``stats``, and the argument-validation guard rails.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api.cli import main
from repro.api.report import generate_report
from repro.api.store import ResultStore

_GRIDS = Path(__file__).resolve().parents[2] / "examples" / "grids"
_PER_GRID = str(_GRIDS / "per_grid.json")


def _write_grid(tmp_path: Path, name: str, step_feet: list[float]) -> str:
    path = tmp_path / name
    path.write_text(
        json.dumps(
            {
                "sweeps": [
                    {
                        "experiment": "fig13",
                        "grid": {"step_feet": step_feet},
                        "engine": "batch",
                        "seed": 13,
                    }
                ]
            }
        )
    )
    return str(path)


class TestShardedByteIdentity:
    def test_four_way_shards_merge_to_the_serial_report(self, tmp_path, capsys):
        serial = tmp_path / "serial"
        assert main(["run", "--specs", _PER_GRID, "--store", str(serial), "--quiet"]) == 0

        manifests = []
        for index in range(4):
            store = tmp_path / f"shard{index}"
            manifest = tmp_path / f"manifest{index}.json"
            code = main(
                [
                    "run",
                    "--specs",
                    _PER_GRID,
                    "--shard-index",
                    str(index),
                    "--shard-count",
                    "4",
                    "--store",
                    str(store),
                    "--manifest",
                    str(manifest),
                    "--quiet",
                ]
            )
            assert code == 0
            manifests.extend(["--manifest", str(manifest)])

        merged = tmp_path / "merged"
        assert main(["merge", "--into", str(merged), *manifests]) == 0
        capsys.readouterr()

        serial_report = generate_report(ResultStore(serial))
        merged_report = generate_report(ResultStore(merged))
        assert serial_report == merged_report  # byte-identical fan-in

    def test_report_check_passes_against_the_merged_store(self, tmp_path, capsys):
        grid = _write_grid(tmp_path, "grid.json", [2.0, 3.0])
        for index in range(2):
            args = ["run", "--specs", grid, "--shard-index", str(index), "--shard-count", "2"]
            assert main([*args, "--store", str(tmp_path / f"s{index}"), "--quiet"]) == 0
        merged = tmp_path / "merged"
        assert main(["merge", "--into", str(merged), str(tmp_path / "s0"), str(tmp_path / "s1")]) == 0
        output = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--store", str(merged), "--output", str(output)]) == 0
        assert main(["report", "--store", str(merged), "--output", str(output), "--check"]) == 0


class TestMergeJson:
    def test_json_output_reports_per_source_stats(self, tmp_path, capsys):
        grid = _write_grid(tmp_path, "grid.json", [2.0])
        assert main(["run", "--specs", grid, "--store", str(tmp_path / "source"), "--quiet"]) == 0
        capsys.readouterr()
        code = main(
            ["merge", "--into", str(tmp_path / "dest"), "--json", str(tmp_path / "source"), str(tmp_path / "source")]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert [entry["ingested"] for entry in document["sources"]] == [1, 0]
        assert (document["ingested"], document["deduped"], document["results"]) == (1, 1, 1)

    def test_manifest_fan_in_refuses_a_missing_shard(self, tmp_path, capsys):
        grid = _write_grid(tmp_path, "grid.json", [2.0, 3.0])
        manifest = tmp_path / "manifest0.json"
        args = ["run", "--specs", grid, "--shard-index", "0", "--shard-count", "2"]
        assert main([*args, "--store", str(tmp_path / "s0"), "--manifest", str(manifest), "--quiet"]) == 0
        assert main(["merge", "--into", str(tmp_path / "dest"), "--manifest", str(manifest)]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_no_sources_at_all_is_a_usage_error(self, tmp_path, capsys):
        assert main(["merge", "--into", str(tmp_path / "dest")]) == 2
        assert "give SOURCE" in capsys.readouterr().err


class TestMultiSpecs:
    def test_batches_concatenate_and_duplicates_are_rejected(self, tmp_path, capsys):
        first = _write_grid(tmp_path, "first.json", [2.0, 3.0])
        second = _write_grid(tmp_path, "second.json", [4.0])
        store = tmp_path / "store"
        assert main(["run", "--specs", first, "--specs", second, "--store", str(store), "--quiet"]) == 0
        assert "campaign: 3 spec(s)" in capsys.readouterr().out
        assert len(ResultStore(store)) == 3

        overlapping = _write_grid(tmp_path, "overlap.json", [3.0, 5.0])
        assert main(["run", "--specs", first, "--specs", overlapping, "--store", str(store)]) == 1
        assert "duplicate spec" in capsys.readouterr().err


class TestCampaignCounters:
    def test_stats_reports_cache_hits_and_misses(self, tmp_path, capsys):
        grid = _write_grid(tmp_path, "grid.json", [2.0, 3.0])
        store = tmp_path / "store"
        assert main(["run", "--specs", grid, "--store", str(store), "--quiet"]) == 0
        assert main(["run", "--specs", grid, "--store", str(store), "--quiet"]) == 0  # warm rerun
        capsys.readouterr()
        assert main(["stats", "--store", str(store), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["campaign_counters"]["fabric.cache.misses"] == 2
        assert document["campaign_counters"]["fabric.cache.hits"] == 2
        assert main(["stats", "--store", str(store)]) == 0
        assert "campaign counters" in capsys.readouterr().out

    def test_refresh_forces_re_execution(self, tmp_path, capsys):
        grid = _write_grid(tmp_path, "grid.json", [2.0])
        store = tmp_path / "store"
        assert main(["run", "--specs", grid, "--store", str(store), "--quiet"]) == 0
        assert main(["run", "--specs", grid, "--store", str(store), "--refresh", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "1 executed, 0 reused; store" in out.splitlines()[-1]


class TestGuardRails:
    def test_shard_flags_come_as_a_pair_and_require_specs(self, capsys):
        assert main(["run", "--specs", _PER_GRID, "--shard-index", "0"]) == 2
        assert "pair" in capsys.readouterr().err
        assert main(["run", "fig13", "--shard-index", "0", "--shard-count", "2"]) == 2
        assert "require --specs" in capsys.readouterr().err

    def test_manifest_requires_specs(self, tmp_path, capsys):
        assert main(["run", "fig13", "--manifest", str(tmp_path / "m.json")]) == 2
        assert "--manifest requires --specs" in capsys.readouterr().err

    def test_out_of_range_shard_index_fails_cleanly(self, capsys):
        assert main(["run", "--specs", _PER_GRID, "--shard-index", "4", "--shard-count", "4"]) == 1
        assert "shard" in capsys.readouterr().err
