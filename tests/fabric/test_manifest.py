"""Campaign manifest: validation, round trip, and fan-in combination.

The fan-in safety contract: shards merge only when their manifests prove
they are slices of one campaign — same grid hash, same counts, every
index covered exactly once and complete.  Anything less aborts before a
single envelope moves.
"""

from __future__ import annotations

import pytest

from repro.api.campaign import read_specs
from repro.exceptions import ConfigurationError
from repro.fabric.manifest import (
    CampaignManifest,
    ShardEntry,
    combine_manifests,
    grid_hash,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from tests.fabric.test_slicing import _GRIDS

_HASH = "0" * 64


def _manifest(*entries: ShardEntry, shard_count: int = 2) -> CampaignManifest:
    return CampaignManifest(grid_hash=_HASH, spec_count=10, shard_count=shard_count, shards=entries)


class TestGridHash:
    def test_tracks_the_expansion_not_the_file(self, tmp_path):
        batch = read_specs(_GRIDS / "per_grid.json")
        assert grid_hash(batch) == grid_hash(list(batch))
        assert grid_hash(batch) != grid_hash(batch[:-1])
        assert grid_hash(batch) != grid_hash(batch[::-1])  # order participates


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        manifest = _manifest(
            ShardEntry(index=0, status="complete", uri="file:///tmp/s0", result_count=5),
            ShardEntry(index=1, status="pending"),
        )
        path = tmp_path / "manifest.json"
        write_manifest(path, manifest)
        assert read_manifest(path) == manifest
        assert not manifest.complete

    def test_write_refuses_an_invalid_manifest(self, tmp_path):
        bad = CampaignManifest(grid_hash="short", spec_count=1, shard_count=1)
        with pytest.raises(ConfigurationError, match="grid_hash"):
            write_manifest(tmp_path / "manifest.json", bad)
        assert not (tmp_path / "manifest.json").exists()


class TestValidation:
    def test_rejects_unknown_version(self):
        document = _manifest().to_dict()
        document["manifest_version"] = 99
        with pytest.raises(ConfigurationError, match="manifest_version"):
            validate_manifest(document)

    def test_rejects_out_of_range_and_duplicate_indices(self):
        out_of_range = _manifest(ShardEntry(index=2, status="complete")).to_dict()
        with pytest.raises(ConfigurationError, match="outside"):
            validate_manifest(out_of_range)
        duplicated = _manifest().to_dict()
        duplicated["shards"] = [
            {"index": 0, "status": "complete", "uri": None, "result_count": None},
            {"index": 0, "status": "complete", "uri": None, "result_count": None},
        ]
        with pytest.raises(ConfigurationError, match="twice"):
            validate_manifest(duplicated)

    def test_rejects_unknown_status(self):
        document = _manifest(ShardEntry(index=0, status="complete")).to_dict()
        document["shards"][0]["status"] = "running"
        with pytest.raises(ConfigurationError, match="status"):
            validate_manifest(document)

    def test_not_json_raises_a_repro_error(self, tmp_path):
        torn = tmp_path / "torn.json"
        torn.write_text('{"manifest_version": 1,')
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            read_manifest(torn)


class TestCombine:
    def test_combines_disjoint_shard_manifests(self):
        combined = combine_manifests(
            [
                _manifest(ShardEntry(index=0, status="complete", uri="file:///a", result_count=5)),
                _manifest(ShardEntry(index=1, status="complete", uri="file:///b", result_count=5)),
            ]
        )
        assert combined.complete
        assert [entry.uri for entry in combined.shards] == ["file:///a", "file:///b"]

    def test_rejects_manifests_from_different_campaigns(self):
        other = CampaignManifest(grid_hash="1" * 64, spec_count=10, shard_count=2)
        with pytest.raises(ConfigurationError, match="disagree on grid_hash"):
            combine_manifests([_manifest(), other])

    def test_rejects_conflicting_entries_for_one_shard(self):
        with pytest.raises(ConfigurationError, match="conflicting"):
            combine_manifests(
                [
                    _manifest(ShardEntry(index=0, status="complete", result_count=5)),
                    _manifest(ShardEntry(index=0, status="complete", result_count=6)),
                ]
            )

    def test_rejects_incomplete_coverage(self):
        with pytest.raises(ConfigurationError, match=r"shard\(s\) \[1\]"):
            combine_manifests([_manifest(ShardEntry(index=0, status="complete"))])
        with pytest.raises(ConfigurationError, match=r"shard\(s\) \[0\]"):
            combine_manifests([_manifest(ShardEntry(index=0, status="failed"), ShardEntry(index=1, status="complete"))])

    def test_empty_input_raises(self):
        with pytest.raises(ConfigurationError, match="no manifests"):
            combine_manifests([])
