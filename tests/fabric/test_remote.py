"""Remote shard fan-in: URI fetching and ``ResultStore.merge`` ingestion.

The fan-in contract: ``file://`` and ``http(s)://`` shard URIs merge
exactly like local store directories — torn lines are counted and
skipped, duplicates deduplicate by result key — so a CI artifact served
over HTTP is as good a merge source as a mounted volume.  The HTTP tests
run a real stdlib server on the loopback interface.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import ResultStore, Runner
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.fabric.remote import fetch_shard, is_uri, parse_shard_lines


def _two_specs():
    return [
        ExperimentSpec(experiment="fig13", params={"step_feet": 4.0}),
        ExperimentSpec(experiment="fig13", params={"step_feet": 6.0}),
    ]


class TestUriDetection:
    def test_schemes_are_uris_paths_are_not(self):
        assert is_uri("file:///tmp/store")
        assert is_uri("https://ci.example/shard.jsonl")
        assert not is_uri("/tmp/store")
        assert not is_uri("relative/store")
        assert not is_uri("C:\\store")  # a drive letter is not a scheme


class TestParseShardLines:
    def test_torn_and_blank_lines_are_tolerated(self):
        text = '{"a": 1}\n\n{"b": 2}\n{"torn": \n[1, 2, 3]\n'
        fetched = parse_shard_lines(text)
        assert fetched.documents == ({"a": 1}, {"b": 2})  # the list line is ignored
        assert fetched.torn_lines_skipped == 1


class TestFetchFile:
    def test_fetches_a_single_shard_file(self, tmp_path):
        shard = tmp_path / "shard.jsonl"
        shard.write_text('{"a": 1}\n{"b": 2}\n')
        fetched = fetch_shard(shard.resolve().as_uri())
        assert fetched.documents == ({"a": 1}, {"b": 2})

    def test_fetches_a_store_directory_in_sorted_shard_order(self, tmp_path):
        (tmp_path / "shard-2.jsonl").write_text('{"b": 2}\n')
        (tmp_path / "shard-1.jsonl").write_text('{"a": 1}\ntorn\n')
        (tmp_path / "notes.txt").write_text("not a shard")
        fetched = fetch_shard(tmp_path.resolve().as_uri())
        assert fetched.documents == ({"a": 1}, {"b": 2})
        assert fetched.torn_lines_skipped == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read shard"):
            fetch_shard((tmp_path / "absent.jsonl").resolve().as_uri())

    def test_unsupported_scheme_raises(self):
        with pytest.raises(ConfigurationError, match="unsupported shard URI scheme"):
            fetch_shard("ftp://host/shard.jsonl")


@pytest.fixture
def http_server(tmp_path):
    """Serve ``tmp_path`` over real loopback HTTP; yields the base URL."""

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 — http.server's required spelling
            target = tmp_path / self.path.lstrip("/")
            if not target.is_file():
                self.send_error(404)
                return
            body = target.read_bytes()
            self.send_response(200)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):
            pass  # keep pytest output clean

    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        thread.join()


class TestFetchHttp:
    def test_fetches_over_http(self, tmp_path, http_server):
        (tmp_path / "shard.jsonl").write_text('{"a": 1}\ntorn\n')
        fetched = fetch_shard(f"{http_server}/shard.jsonl")
        assert fetched.documents == ({"a": 1},)
        assert fetched.torn_lines_skipped == 1

    def test_http_error_raises(self, http_server):
        with pytest.raises(ConfigurationError, match="cannot fetch shard"):
            fetch_shard(f"{http_server}/absent.jsonl")


class TestMergeFromUris:
    def test_file_uri_merges_like_a_local_store(self, tmp_path):
        source = ResultStore(tmp_path / "source")
        Runner(telemetry=False).run_batch(_two_specs(), store=source)
        destination = ResultStore(tmp_path / "destination")
        stats = destination.merge(source.root.resolve().as_uri())
        assert stats.ingested == 2
        again = destination.merge(str(source.root))  # plain path, same content
        assert (again.ingested, again.deduped) == (0, 2)
        assert len(destination) == 2

    def test_http_uri_merges_with_dedup_and_torn_tolerance(self, tmp_path, http_server):
        source = ResultStore(tmp_path / "source")
        Runner(telemetry=False).run_batch(_two_specs(), store=source)
        [shard] = source.shard_paths()
        served = tmp_path / "served.jsonl"
        served.write_text(shard.read_text() + shard.read_text() + "{torn\n")
        destination = ResultStore(tmp_path / "destination")
        stats = destination.merge(f"{http_server}/served.jsonl")
        assert stats.ingested == 2
        assert stats.deduped == 2  # the doubled lines deduplicate by result key
        assert stats.torn_lines_skipped == 1
