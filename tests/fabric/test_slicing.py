"""Deterministic shard slicing and multi-grid spec concatenation.

The fleet contract: for every shard count, the slices of an expanded
batch are disjoint, complete, and order-stable — so N machines each
running ``shard_slice(batch, I, N)`` reassemble exactly the serial
batch.  The real committed grids are the fixture: whatever the fleet
grid expands to is what gets sliced in production.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.campaign import read_specs
from repro.exceptions import ConfigurationError
from repro.fabric.slicing import read_spec_files, shard_slice, spec_identity

_GRIDS = Path(__file__).resolve().parents[2] / "examples" / "grids"


class TestShardSlice:
    def test_every_decomposition_is_disjoint_and_complete(self):
        """Exhaustive over the real fleet grid: every (I, N) up to N=8."""
        batch = read_specs(_GRIDS / "fleet_grid.json")
        identities = [spec_identity(spec) for spec in batch]
        assert len(set(identities)) == len(batch)  # identity is injective here
        for count in range(1, 9):
            slices = [shard_slice(batch, index, count) for index in range(count)]
            rejoined = [spec_identity(spec) for piece in slices for spec in piece]
            assert sorted(rejoined) == sorted(identities)
            assert len(rejoined) == len(batch)
            sizes = [len(piece) for piece in slices]
            assert max(sizes) - min(sizes) <= 1  # balanced to within one spec

    def test_slices_preserve_batch_order(self):
        batch = read_specs(_GRIDS / "per_grid.json")
        piece = shard_slice(batch, 1, 3)
        assert piece == batch[1::3]

    def test_oversharded_batches_yield_empty_slices(self):
        batch = read_specs(_GRIDS / "per_grid.json")
        assert shard_slice(batch, len(batch) + 1, len(batch) + 5) == []

    @pytest.mark.parametrize(("index", "count"), [(0, 0), (-1, 2), (2, 2), (5, 3)])
    def test_invalid_coordinates_raise(self, index, count):
        with pytest.raises(ConfigurationError):
            shard_slice([], index, count)


class TestReadSpecFiles:
    def test_batches_concatenate_in_argument_order(self):
        fleet = read_specs(_GRIDS / "fleet_grid.json")
        per = read_specs(_GRIDS / "per_grid.json")
        combined = read_spec_files([_GRIDS / "fleet_grid.json", _GRIDS / "per_grid.json"])
        assert combined == fleet + per

    def test_duplicate_specs_across_files_are_rejected(self, tmp_path):
        duplicate = tmp_path / "dup.json"
        duplicate.write_text(
            json.dumps(
                {"specs": [{"experiment": "fig13", "params": {"step_feet": 2.0}, "engine": "batch", "seed": 13}]}
            )
        )
        with pytest.raises(ConfigurationError, match="duplicate spec"):
            read_spec_files([_GRIDS / "per_grid.json", duplicate])

    def test_duplicates_within_one_file_are_rejected(self, tmp_path):
        doubled = tmp_path / "doubled.json"
        spec = {"experiment": "fig13", "params": {"step_feet": 3.0}, "seed": 9}
        doubled.write_text(json.dumps({"specs": [spec, spec]}))
        with pytest.raises(ConfigurationError, match="duplicate spec"):
            read_spec_files([doubled])
