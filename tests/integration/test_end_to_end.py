"""Cross-module integration tests for the full interscatter pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backscatter.ssb import SingleSidebandModulator
from repro.ble.gfsk import GfskModulator
from repro.ble.single_tone import craft_single_tone_payload
from repro.core.downlink import InterscatterDownlink
from repro.core.link import InterscatterLink
from repro.core.uplink import InterscatterUplink, UplinkTarget
from repro.utils.dsp import add_awgn
from repro.wifi.dsss.receiver import DsssReceiver
from repro.wifi.dsss.transmitter import CHIP_RATE_HZ, DsssTransmitter
from repro.wifi.dsss.frames import mpdu_with_fcs
from repro.wifi.ofdm.scrambler_seeds import FixedSeedModel


class TestBluetoothToneToWifi:
    """The paper's central pipeline: BLE GFSK tone → SSB backscatter → Wi-Fi RX."""

    def test_gfsk_tone_through_backscatter_decodes_as_wifi(self, rng):
        # 1. Real GFSK waveform for the crafted single-tone payload.
        crafted = craft_single_tone_payload(38, tone_bit=1)
        sample_rate = 88e6
        modulator = GfskModulator(samples_per_symbol=88)  # 88 Msps to match the tag
        ble_waveform = modulator.modulate(crafted.packet.air_bits())
        payload_start = (1 + 4 + 2 + 6) * 8 * 88
        tone = ble_waveform.samples[payload_start:]

        # 2. Tag: 2 Mbps Wi-Fi baseband imposed through the SSB modulator.
        transmitter = DsssTransmitter(2.0, short_preamble=True)
        packet = transmitter.encode_psdu(mpdu_with_fcs(b"\x00\x01" + b"tone pipeline"))
        ssb = SingleSidebandModulator(shift_hz=35.75e6, sample_rate_hz=sample_rate)
        baseband = ssb.upsample_symbols(packet.chips, CHIP_RATE_HZ)
        assert baseband.size <= tone.size, "Wi-Fi packet must fit in the tone window"
        reflection = ssb.modulate_baseband(baseband)
        backscattered = reflection.apply_to(tone[: reflection.reflection.size])

        # 3. Commodity receiver: mix the synthesized packet to baseband and decode.
        n = np.arange(backscattered.size)
        # The GFSK tone sits at +250 kHz; the packet is at tone + 35.75 MHz.
        received = backscattered * np.exp(-2j * np.pi * (250e3 + 35.75e6) * n / sample_rate)
        received = add_awgn(received, 25.0, rng=rng)
        decim = int(sample_rate // CHIP_RATE_HZ)
        chips = received[: (received.size // decim) * decim].reshape(-1, decim).mean(axis=1)
        result = DsssReceiver(short_preamble=True).decode_chips(chips)
        assert result.crc_ok
        assert b"tone pipeline" in result.psdu

    def test_backscattered_spectrum_lands_on_wifi_channel_11(self):
        uplink = InterscatterUplink(wifi_rate_mbps=2.0)
        # Frequency plan: BLE 38 (2426 MHz) + 250 kHz tone + 35.75 MHz shift
        # = 2462 MHz = Wi-Fi channel 11.
        assert uplink.ble_frequency_mhz + 0.25 + uplink.shift_hz / 1e6 == pytest.approx(2462.0)


class TestFullSystem:
    def test_query_then_reply(self, rng):
        link = InterscatterLink(
            wifi_rate_mbps=2.0,
            bluetooth_power_dbm=10.0,
            bluetooth_to_tag_feet=1.0,
            tag_to_receiver_feet=15.0,
            rng=rng,
        )
        query = rng.integers(0, 2, 16).astype(np.uint8)
        result = link.transmit(b"sensor reading 42", query_bits=query)
        assert result.crc_ok
        assert result.downlink is not None
        assert result.downlink.bit_error_rate < 0.2

    def test_waveform_pipeline_all_rates(self):
        for rate in (2.0, 5.5, 11.0):
            uplink = InterscatterUplink(wifi_rate_mbps=rate)
            result = uplink.simulate_waveform(b"rate sweep", snr_db=30.0)
            assert result.crc_ok, f"rate {rate} failed"

    def test_zigbee_generality(self):
        uplink = InterscatterUplink(UplinkTarget.ZIGBEE_802154)
        result = uplink.simulate_waveform(b"generality", snr_db=25.0)
        assert result.crc_ok

    def test_downlink_waveform_with_incrementing_seeds(self, rng):
        downlink = InterscatterDownlink(rng=rng)
        for _ in range(3):
            bits = rng.integers(0, 2, 16).astype(np.uint8)
            result = downlink.transmit_waveform(bits, snr_db=25.0)
            assert result.bit_error_rate < 0.15

    def test_downlink_then_uplink_roundtrip_payload(self, rng):
        # The §2.5 query-reply exchange: the query bits select a sensor, the
        # reply carries its value.
        downlink = InterscatterDownlink(seed_model=FixedSeedModel(0x3C), rng=rng)
        query = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
        down = downlink.transmit_waveform(query)
        assert np.array_equal(down.decoded_bits, query)

        uplink = InterscatterUplink(wifi_rate_mbps=2.0)
        reply_payload = bytes([int("".join(map(str, query)), 2)]) + b" -> reply"
        up = uplink.simulate_waveform(reply_payload, snr_db=30.0)
        assert up.crc_ok
        assert up.payload == reply_payload
