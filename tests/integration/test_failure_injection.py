"""Failure-injection tests: corrupted waveforms, interference and misconfiguration.

A production-quality receiver should fail *cleanly* (CRC failure or a
DecodeError subclass), never crash or silently return wrong payloads as
valid, no matter what the channel does to the signal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DecodeError, ReproError
from repro.utils.dsp import add_awgn
from repro.wifi.dsss.frames import WifiDataFrame
from repro.wifi.dsss.receiver import DsssReceiver
from repro.wifi.dsss.transmitter import DsssTransmitter
from repro.zigbee.oqpsk import OqpskWaveform
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeFrame, ZigbeeTransmitter
from repro.core.uplink import InterscatterUplink


def _decode_or_crc_fail(decode_callable) -> bool:
    """Run a decoder; return True when it correctly reports failure."""
    try:
        result = decode_callable()
    except ReproError:
        return True
    return not result.crc_ok


class TestDsssFailureModes:
    @pytest.fixture
    def packet(self):
        frame = WifiDataFrame(payload=b"failure injection target", sequence_number=17)
        return DsssTransmitter(2.0).encode_frame(frame)

    def test_burst_erasure_mid_payload(self, packet):
        chips = packet.chips.copy()
        start = packet.header_chips + 200
        chips[start : start + 400] = 0.0
        assert _decode_or_crc_fail(lambda: DsssReceiver().decode_chips(chips))

    def test_phase_jump_mid_packet_detected(self, packet):
        chips = packet.chips.copy()
        # DQPSK is differential: a single 90-degree jump corrupts exactly one
        # symbol transition, which the FCS must catch.
        chips[packet.header_chips + 550 :] *= np.exp(1j * np.pi / 2)
        assert _decode_or_crc_fail(lambda: DsssReceiver().decode_chips(chips))

    def test_strong_tone_interferer(self, packet, rng):
        n = np.arange(packet.chips.size)
        interferer = 0.9 * np.exp(2j * np.pi * 0.17 * n)
        chips = packet.chips + interferer
        assert _decode_or_crc_fail(
            lambda: DsssReceiver().decode_chips(chips)
        ) or DsssReceiver().decode_chips(chips).crc_ok  # either clean fail or survive

    def test_all_zero_input(self):
        with pytest.raises(ReproError):
            DsssReceiver().decode_chips(np.zeros(30000, dtype=complex))

    def test_truncated_mid_payload(self, packet):
        truncated = packet.chips[: packet.header_chips + 50]
        assert _decode_or_crc_fail(lambda: DsssReceiver().decode_chips(truncated))

    def test_wrong_preamble_type_configured(self, packet):
        # Receiver expecting the short preamble must not accept a long one.
        assert _decode_or_crc_fail(
            lambda: DsssReceiver(short_preamble=True).decode_chips(packet.chips)
        )

    def test_wrong_scrambler_seed(self, packet):
        assert _decode_or_crc_fail(
            lambda: DsssReceiver(scrambler_seed=0x55).decode_chips(packet.chips)
        )


class TestZigbeeFailureModes:
    @pytest.fixture
    def packet(self):
        return ZigbeeTransmitter().encode_frame(ZigbeeFrame(payload=b"zigbee failure test"))

    def test_heavy_noise_reported(self, packet, rng):
        noisy = OqpskWaveform(
            samples=add_awgn(packet.waveform.samples, -10.0, rng=rng),
            sample_rate_hz=packet.waveform.sample_rate_hz,
            num_chips=packet.waveform.num_chips,
        )
        assert _decode_or_crc_fail(lambda: ZigbeeReceiver().decode_waveform(noisy))

    def test_flipped_payload_chips_fail_fcs(self, packet):
        chips = packet.chips.copy()
        chips[1500:1600] ^= 1
        assert _decode_or_crc_fail(lambda: ZigbeeReceiver().decode_chips(chips))

    def test_all_zero_chips(self):
        with pytest.raises(DecodeError):
            ZigbeeReceiver().decode_chips(np.zeros(2048, dtype=np.uint8))


class TestUplinkFailureModes:
    def test_no_silent_wrong_payloads_under_noise(self, rng):
        # Across a range of SNRs the uplink either decodes the exact payload
        # or reports failure; it must never return a different payload as OK.
        uplink = InterscatterUplink(rng=rng)
        payload = b"integrity check payload"
        for snr in (-10.0, 0.0, 5.0, 15.0, 30.0):
            result = uplink.simulate_waveform(payload, snr_db=snr)
            if result.crc_ok:
                assert result.payload == payload

    def test_zigbee_uplink_integrity(self, rng):
        from repro.core.uplink import UplinkTarget

        uplink = InterscatterUplink(UplinkTarget.ZIGBEE_802154, rng=rng)
        payload = b"zigbee integrity"
        for snr in (-5.0, 10.0, 25.0):
            result = uplink.simulate_waveform(payload, snr_db=snr)
            if result.crc_ok:
                assert result.payload == payload
