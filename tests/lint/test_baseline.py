"""Baseline mechanics: fingerprints, round trips, the shrink-only ratchet."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import (
    Baseline,
    BaselineEntry,
    Finding,
    apply_baseline,
    baseline_from_findings,
    fingerprint,
    load_baseline,
    write_baseline,
)


def _finding(line: int = 4, snippet: str = "np.random.seed(0)", path: str = "src/repro/mc/x.py") -> Finding:
    return Finding(
        rule="RL002",
        category="rng-discipline",
        path=path,
        line=line,
        message="legacy RNG",
        snippet=snippet,
        fix_hint="use default_rng",
    )


class TestFingerprint:
    def test_independent_of_line_number(self):
        assert fingerprint(_finding(line=4)) == fingerprint(_finding(line=104))

    def test_sensitive_to_rule_path_and_snippet(self):
        base = fingerprint(_finding())
        assert fingerprint(_finding(snippet="np.random.rand(3)")) != base
        assert fingerprint(_finding(path="src/repro/mc/y.py")) != base


class TestRoundTrip:
    def test_write_then_load_preserves_entries(self, tmp_path):
        target = tmp_path / "baseline.json"
        written = write_baseline(target, [_finding(), _finding(line=9)], note="ratchet to zero")
        loaded = load_baseline(target)
        assert loaded == written
        assert len(loaded.entries) == 1
        assert loaded.entries[0].count == 2
        assert loaded.entries[0].note == "ratchet to zero"
        assert target.read_text().endswith("\n")

    def test_distinct_findings_get_distinct_entries(self):
        baseline = baseline_from_findings([_finding(), _finding(snippet="np.random.rand(3)")])
        assert len(baseline.entries) == 2

    def test_empty_baseline_document(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"version": 1, "entries": []}\n')
        assert load_baseline(target) == Baseline()


class TestLoadValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text("{")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_baseline(target)

    def test_wrong_version(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConfigurationError, match="version"):
            load_baseline(target)

    def test_bad_count(self, tmp_path):
        target = tmp_path / "bad.json"
        entry = {"fingerprint": "ab", "rule": "RL002", "path": "p", "snippet": "s", "count": 0}
        target.write_text(json.dumps({"version": 1, "entries": [entry]}))
        with pytest.raises(ConfigurationError, match="positive integer"):
            load_baseline(target)

    def test_duplicate_fingerprints_rejected(self, tmp_path):
        target = tmp_path / "bad.json"
        entry = {"fingerprint": "ab", "rule": "RL002", "path": "p", "snippet": "s"}
        target.write_text(json.dumps({"version": 1, "entries": [entry, dict(entry)]}))
        with pytest.raises(ConfigurationError, match="duplicate fingerprints"):
            load_baseline(target)


class TestApply:
    def test_grandfathered_findings_are_suppressed(self):
        baseline = baseline_from_findings([_finding()])
        outcome = apply_baseline([_finding()], baseline)
        assert outcome.new == ()
        assert len(outcome.suppressed) == 1
        assert outcome.stale == ()

    def test_count_budget_marks_the_excess_as_new(self):
        baseline = baseline_from_findings([_finding()])
        outcome = apply_baseline([_finding(line=4), _finding(line=9)], baseline)
        assert len(outcome.suppressed) == 1
        assert len(outcome.new) == 1

    def test_unmatched_entries_are_stale(self):
        baseline = baseline_from_findings([_finding()])
        outcome = apply_baseline([], baseline)
        assert outcome.new == ()
        assert outcome.suppressed == ()
        assert [entry.fingerprint for entry in outcome.stale] == [fingerprint(_finding())]

    def test_uncovered_findings_are_new(self):
        outcome = apply_baseline([_finding()], Baseline())
        assert len(outcome.new) == 1

    def test_partial_count_use_is_still_stale(self):
        entry = BaselineEntry(
            fingerprint=fingerprint(_finding()),
            rule="RL002",
            path="src/repro/mc/x.py",
            snippet="np.random.seed(0)",
            count=3,
        )
        outcome = apply_baseline([_finding()], Baseline(entries=(entry,)))
        assert len(outcome.suppressed) == 1
        assert len(outcome.stale) == 1
