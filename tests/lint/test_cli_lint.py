"""The ``python -m repro lint`` verb, including the committed-tree meta-test."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.cli import main
from repro.lint import validate_lint_document

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_MODULE = (
    "import random\n"
    "import numpy as np\n"
    "\n"
    "def kernel(data, xp):\n"
    "    np.random.seed(0)\n"
    "    return np.cumsum(data) + random.random()\n"
)


@pytest.fixture
def bad_file(tmp_path):
    target = tmp_path / "bad_module.py"
    target.write_text(BAD_MODULE)
    return target


class TestCommittedTree:
    def test_lint_check_passes_on_the_committed_tree(self, capsys, monkeypatch):
        """Meta-test: the repo obeys its own contracts (the CI gate)."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "--check"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "clean" in out

    def test_committed_baseline_is_empty(self):
        document = json.loads((REPO_ROOT / "lint-baseline.json").read_text())
        assert document == {"version": 1, "entries": []}


class TestFindingsOutput:
    def test_bad_file_fails_with_diagnostics(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "RL002" in out
        assert "hint:" in out
        assert "failed" in out

    def test_rule_filter_restricts_the_run(self, bad_file, capsys):
        assert main(["lint", "--rule", "RL006", str(bad_file)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_json_document_validates_against_the_schema(self, bad_file, capsys):
        assert main(["lint", "--json", str(bad_file)]) == 1
        document = json.loads(capsys.readouterr().out)
        validate_lint_document(document)
        assert document["summary"]["files_checked"] == 1
        assert document["summary"]["findings"] >= 3
        assert {finding["rule"] for finding in document["findings"]} == {"RL001", "RL002"}
        assert {rule["id"] for rule in document["rules"]} == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
        }

    def test_markdown_table_for_ci_summaries(self, bad_file, tmp_path, capsys):
        table = tmp_path / "summary.md"
        assert main(["lint", "--markdown", str(table), str(bad_file)]) == 1
        content = table.read_text()
        assert "| Rule | Location | Message |" in content
        assert "RL002" in content
        assert f"{bad_file.as_posix()}:5" in content

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
            assert rule_id in out

    def test_unknown_rule_is_a_clean_error(self, capsys):
        assert main(["lint", "--rule", "RL999"]) == 1
        assert "unknown lint rule" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_check_round_trip(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--baseline", str(baseline), "--write-baseline", str(bad_file)]) == 0
        assert "grandfathered" in capsys.readouterr().out

        # Grandfathered findings keep the gate green...
        assert main(["lint", "--baseline", str(baseline), "--check", str(bad_file)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered finding(s) suppressed" in out

        # ...and fixing the code makes the entries stale, failing --check
        # until the baseline shrinks (but not a plain run).
        bad_file.write_text("x = 1\n")
        assert main(["lint", "--baseline", str(baseline), str(bad_file)]) == 0
        assert main(["lint", "--baseline", str(baseline), "--check", str(bad_file)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_new_findings_fail_even_with_a_baseline(self, bad_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--baseline", str(baseline), "--write-baseline", str(bad_file)]) == 0
        bad_file.write_text(BAD_MODULE + "np.random.shuffle([1, 2])\n")
        assert main(["lint", "--baseline", str(baseline), "--check", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "numpy.random.shuffle" in out
