"""Engine behaviour: pragmas, rule selection, the walker and finding records."""

from __future__ import annotations

import textwrap

import pytest

from repro.exceptions import ConfigurationError
from repro.lint import Rule, get_rule, iter_rules, lint_source, register_rule, select_rules
from repro.lint.engine import ImportMap, iter_python_files, parse_source

BAD_RNG = textwrap.dedent(
    """
    import numpy as np

    np.random.seed(0)
    """
)


class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        source = "import numpy as np\nnp.random.seed(0)  # lint-ok: RL002 -- fixture\n"
        assert lint_source(source, "src/repro/mc/x.py", rules=["RL002"]) == []

    def test_pragma_for_another_rule_does_not_suppress(self):
        source = "import numpy as np\nnp.random.seed(0)  # lint-ok: RL006\n"
        findings = lint_source(source, "src/repro/mc/x.py", rules=["RL002"])
        assert [f.rule for f in findings] == ["RL002"]

    def test_multi_rule_pragma_covers_both(self):
        source = (
            "import numpy as np\n"
            "def kernel(data, xp):\n"
            "    return np.random.rand(3) + np.cumsum(data)  # lint-ok: RL001, RL002\n"
        )
        assert lint_source(source, "src/repro/mc/x.py", rules=["RL001", "RL002"]) == []

    def test_pragma_reason_text_is_optional(self):
        with_reason = "import random  # lint-ok: RL002 -- fixture needs it\n"
        without = "import random  # lint-ok: RL002\n"
        for source in (with_reason, without):
            assert lint_source(source, "src/repro/mc/x.py", rules=["RL002"]) == []


class TestRuleRegistry:
    def test_catalogue_has_the_seven_contract_rules(self):
        ids = [rule.id for rule in iter_rules()]
        assert ids == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"]

    def test_select_rules_none_means_all(self):
        assert [r.id for r in select_rules(None)] == [r.id for r in iter_rules()]

    def test_select_rules_subset(self):
        assert [r.id for r in select_rules(["RL004", "RL001"])] == ["RL004", "RL001"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule"):
            get_rule("RL999")

    def test_register_rejects_malformed_ids_and_kinds(self):
        good = get_rule("RL001")
        with pytest.raises(ConfigurationError, match="does not match"):
            register_rule(Rule(id="bogus", category="c", description="d", fix_hint="h", check=good.check))
        with pytest.raises(ConfigurationError, match="unknown kind"):
            register_rule(
                Rule(id="ZZ998", category="c", description="d", fix_hint="h", check=good.check, kind="weird"),
            )
        with pytest.raises(ConfigurationError, match="already registered"):
            register_rule(good)

    def test_scope_and_exclude_drive_applicability(self):
        rule = get_rule("RL006")
        assert rule.applies_to("src/repro/wifi/frames.py")
        assert not rule.applies_to("tests/wifi/test_frames.py")
        assert not rule.applies_to("examples/demo.py")


class TestWalker:
    def test_iter_python_files_skips_pycache_and_hidden(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("x = 1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "secret.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["mod.py"]

    def test_single_file_passes_through(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([target])) == [target]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            list(iter_python_files([tmp_path / "nope"]))

    def test_syntax_error_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="cannot lint"):
            lint_source("def broken(:\n", "src/repro/mc/x.py")


class TestFindings:
    def test_findings_are_sorted_and_serializable(self):
        source = textwrap.dedent(
            """
            import random
            import numpy as np

            def kernel(data, xp):
                return np.cumsum(data)
            """
        )
        findings = lint_source(source, "src/repro/mc/x.py", rules=["RL002", "RL001"])
        assert [f.sort_key for f in findings] == sorted(f.sort_key for f in findings)
        for finding in findings:
            document = finding.to_dict()
            assert set(document) == {"rule", "category", "path", "line", "message", "snippet", "fix_hint"}
            assert document["snippet"] == finding.snippet

    def test_snippet_is_the_stripped_source_line(self):
        findings = lint_source(BAD_RNG, "src/repro/mc/x.py", rules=["RL002"])
        assert findings[0].snippet == "np.random.seed(0)"


class TestImportMap:
    def test_resolves_aliases_and_attribute_chains(self):
        context = parse_source(
            "import numpy as np\n"
            "import os.path\n"
            "from numpy.random import default_rng as mk\n"
        )
        imports = ImportMap(context.tree)
        assert imports.resolve("np") == "numpy"
        assert imports.resolve("os") == "os"
        assert imports.resolve("mk") == "numpy.random.default_rng"
        assert imports.resolve("undefined") is None

    def test_unimported_names_do_not_resolve(self):
        context = parse_source("np = object()\n")
        imports = ImportMap(context.tree)
        assert imports.resolve("np") is None
