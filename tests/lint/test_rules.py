"""Each RL rule fires on a bad fixture and stays silent on a good one."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source


def _lint(source: str, path: str, *rules: str) -> list:
    return lint_source(textwrap.dedent(source), path, rules=rules or None)


class TestRL001BackendPurity:
    def test_fires_on_direct_numpy_call_in_xp_kernel(self):
        findings = _lint(
            """
            import numpy as np

            def kernel(data, xp):
                return np.sum(data)
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert [f.rule for f in findings] == ["RL001"]
        assert "kernel()" in findings[0].message
        assert "numpy.sum" in findings[0].message

    def test_fires_under_import_numpy_alias(self):
        findings = _lint(
            """
            import numpy

            def kernel(data, xp):
                return numpy.stack([data, data])
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert [f.rule for f in findings] == ["RL001"]

    def test_asarray_lift_dtypes_and_generators_are_allowed(self):
        findings = _lint(
            """
            import numpy as np

            def kernel(data, xp):
                table = xp.asarray(np.arange(8, dtype=np.uint8))
                rng = np.random.default_rng(7)
                noise = xp.asarray(rng.standard_normal(4))
                return xp.sum(xp.asarray(data, dtype=np.float64) + table) + noise
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert findings == []

    def test_numpy_asarray_is_not_a_lift(self):
        findings = _lint(
            """
            import numpy as np

            def kernel(data, xp):
                return np.asarray(data)
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert [f.rule for f in findings] == ["RL001"]

    def test_functions_without_xp_are_exempt(self):
        findings = _lint(
            """
            import numpy as np

            def host_side(data):
                return np.sum(data)
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert findings == []

    def test_nested_kernel_with_own_xp_is_checked_separately(self):
        findings = _lint(
            """
            import numpy as np

            def outer(data, xp):
                def inner(block, xp):
                    return np.cumsum(block)
                return inner(data, xp)
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        # The violation belongs to inner(), not outer().
        assert [f.rule for f in findings] == ["RL001"]
        assert "inner()" in findings[0].message

    def test_def_line_pragma_blesses_the_whole_boundary_function(self):
        findings = _lint(
            """
            import numpy as np

            def staging(data, xp):  # lint-ok: RL001 -- documented numpy boundary
                lifted = np.asarray(data)
                return np.sum(lifted)
            """,
            "src/repro/mc/kernels.py",
            "RL001",
        )
        assert findings == []


class TestRL002RngDiscipline:
    def test_fires_on_stdlib_random_and_legacy_numpy_api(self):
        findings = _lint(
            """
            import random
            import numpy as np

            def draw(n):
                np.random.seed(0)
                return [random.random() for _ in range(n)] + list(np.random.rand(n))
            """,
            "src/repro/mc/draws.py",
            "RL002",
        )
        assert [f.rule for f in findings] == ["RL002", "RL002", "RL002"]
        messages = " ".join(f.message for f in findings)
        assert "stdlib `random`" in messages
        assert "numpy.random.seed" in messages
        assert "numpy.random.rand" in messages

    def test_fires_on_from_random_import(self):
        findings = _lint(
            """
            from random import choice
            """,
            "src/repro/mc/draws.py",
            "RL002",
        )
        assert [f.rule for f in findings] == ["RL002"]

    def test_seeded_generators_are_allowed(self):
        findings = _lint(
            """
            import numpy as np
            from numpy.random import Generator, default_rng

            def draw(n, seed):
                rng = np.random.default_rng(np.random.SeedSequence(seed))
                assert isinstance(rng, Generator)
                return rng.random(n)
            """,
            "src/repro/mc/draws.py",
            "RL002",
        )
        assert findings == []

    def test_local_variable_named_random_is_not_flagged(self):
        findings = _lint(
            """
            def pick(random):
                return random.choice([1, 2])
            """,
            "src/repro/mc/draws.py",
            "RL002",
        )
        assert findings == []


class TestRL003Determinism:
    def test_fires_on_clock_entropy_and_set_iteration(self):
        source = """
        import time
        import uuid

        def stamp(names):
            lines = [name for name in set(names)]
            for item in {1, 2}:
                lines.append(str(item))
            return time.time(), uuid.uuid4(), lines
        """
        findings = _lint(source, "src/repro/api/report.py", "RL003")
        assert [f.rule for f in findings] == ["RL003"] * 4
        messages = " ".join(f.message for f in findings)
        assert "time.time()" in messages
        assert "uuid.uuid4()" in messages
        assert "iterating a set" in messages

    def test_scope_only_covers_result_producing_modules(self):
        source = """
        import time

        def now():
            return time.time()
        """
        assert _lint(source, "src/repro/obs/metrics.py", "RL003") == []
        assert len(_lint(source, "src/repro/plots/render.py", "RL003")) == 1
        assert len(_lint(source, "src/repro/api/result.py", "RL003")) == 1

    def test_sorted_set_iteration_is_allowed(self):
        findings = _lint(
            """
            def lines(names):
                return [name for name in sorted(set(names))]
            """,
            "src/repro/api/report.py",
            "RL003",
        )
        assert findings == []


class TestRL004TelemetryIsolation:
    def test_fires_on_attribute_subscript_and_get(self):
        source = """
        def leak(result, document):
            a = result.telemetry
            b = document["telemetry"]
            c = document.get("telemetry")
            return a, b, c
        """
        findings = _lint(source, "src/repro/api/store.py", "RL004")
        assert [f.rule for f in findings] == ["RL004"] * 3

    def test_scope_excludes_the_obs_package(self):
        source = """
        def consume(result):
            return result.telemetry
        """
        assert _lint(source, "src/repro/obs/stats.py", "RL004") == []
        assert len(_lint(source, "src/repro/plots/gallery.py", "RL004")) == 1

    def test_other_keys_are_fine(self):
        findings = _lint(
            """
            def read(document):
                return document["payload"], document.get("params")
            """,
            "src/repro/api/store.py",
            "RL004",
        )
        assert findings == []


class TestRL005RegistryCompleteness:
    def test_fires_when_a_driver_never_registers(self):
        findings = _lint(
            """
            def run():
                return 1
            """,
            "src/repro/experiments/fig99_demo.py",
            "RL005",
        )
        assert [f.rule for f in findings] == ["RL005"]
        assert "never calls" in findings[0].message

    def test_fires_on_missing_or_none_hooks(self):
        findings = _lint(
            """
            from repro.api.registry import register

            def run():
                return 1

            register(name="fig99", title="demo", run=run, engines={"scalar": run}, plot=None)
            """,
            "src/repro/experiments/fig99_demo.py",
            "RL005",
        )
        assert [f.rule for f in findings] == ["RL005"]
        assert "metrics" in findings[0].message
        assert "plot" in findings[0].message

    def test_complete_driver_is_clean(self):
        findings = _lint(
            """
            from repro.api.registry import register

            def run():
                return 1

            def metrics(result):
                return {}

            def plot(result):
                return None

            register(
                name="fig99", title="demo", run=run,
                engines={"scalar": run}, metrics=metrics, plot=plot,
            )
            """,
            "src/repro/experiments/fig99_demo.py",
            "RL005",
        )
        assert findings == []

    def test_facade_cross_check_catches_unimported_drivers(self, tmp_path):
        from repro.lint import lint_paths

        package = tmp_path / "repro" / "experiments"
        package.mkdir(parents=True)
        driver = textwrap.dedent(
            """
            from repro.api.registry import register

            def run():
                return 1

            register(name="x", title="t", run=run, engines={"s": run}, metrics=run, plot=run)
            """
        )
        (package / "fig98_listed.py").write_text(driver)
        (package / "fig99_orphan.py").write_text(driver)
        (package / "__init__.py").write_text("from repro.experiments import fig98_listed\n")
        findings, files_checked = lint_paths([tmp_path], rules=["RL005"])
        assert files_checked == 3
        assert [f.rule for f in findings] == ["RL005"]
        assert "fig99_orphan" in findings[0].message
        assert findings[0].path.endswith("fig99_orphan.py")


class TestRL006ExceptionHygiene:
    def test_fires_on_assert_and_bare_raises(self):
        source = """
        def check(value):
            assert value > 0
            if value > 10:
                raise Exception("too big")
            raise AssertionError("unreachable")
        """
        findings = _lint(source, "src/repro/wifi/frames.py", "RL006")
        assert [f.rule for f in findings] == ["RL006"] * 3

    def test_typed_exceptions_and_reraise_are_clean(self):
        findings = _lint(
            """
            from repro.exceptions import ConfigurationError

            def check(value):
                if value <= 0:
                    raise ConfigurationError("value must be positive")
                try:
                    return 1 / value
                except ZeroDivisionError:
                    raise
            """,
            "src/repro/wifi/frames.py",
            "RL006",
        )
        assert findings == []

    def test_test_code_is_exempt(self):
        source = """
        def test_value():
            assert 1 + 1 == 2
        """
        assert _lint(source, "tests/wifi/test_frames.py", "RL006") == []
        assert _lint(source, "src/repro/conftest.py", "RL006") == []


class TestRL007DocumentValidation:
    def test_fires_on_an_unvalidated_fabric_write(self):
        findings = _lint(
            """
            import json
            from pathlib import Path

            def write_ledger(path, document):
                Path(path).write_text(json.dumps(document))
            """,
            "src/repro/fabric/ledger.py",
            "RL007",
        )
        assert [f.rule for f in findings] == ["RL007"]
        assert "write_ledger()" in findings[0].message

    def test_silent_when_the_writer_validates_first(self):
        source = """
        import json
        from pathlib import Path

        def validate_ledger(document):
            pass

        def write_ledger(path, document):
            validate_ledger(document)
            Path(path).write_text(json.dumps(document))
        """
        assert _lint(source, "src/repro/fabric/ledger.py", "RL007") == []

    def test_method_style_validators_count_too(self):
        source = """
        def publish(store, document):
            store.validate_document(document)
            store.path.write_bytes(b"...")
        """
        assert _lint(source, "src/repro/fabric/ledger.py", "RL007") == []

    def test_fires_on_json_dump_but_not_ast_dump(self):
        findings = _lint(
            """
            import json

            def publish(handle, document):
                json.dump(document, handle)
            """,
            "src/repro/fabric/ledger.py",
            "RL007",
        )
        assert [f.rule for f in findings] == ["RL007"]
        hashing = """
        import ast
        import hashlib

        def digest(tree):
            return hashlib.sha256(ast.dump(tree).encode()).hexdigest()
        """
        assert _lint(hashing, "src/repro/fabric/cas.py", "RL007") == []

    def test_modules_outside_the_fabric_are_exempt(self):
        source = """
        from pathlib import Path

        def write(path, text):
            Path(path).write_text(text)
        """
        assert _lint(source, "src/repro/api/report.py", "RL007") == []
