"""Tests for the pluggable array-API backend layer and kernel parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mc.backend import (
    BACKENDS,
    ENV_VAR,
    backend_names,
    default_backend,
    get_backend,
    get_namespace,
    resolve_engine_backend,
    resolve_namespace,
    to_numpy,
)
from repro.mc.kernels import (
    deinterleave_batch,
    demap_batch,
    demap_soft_batch,
    depuncture_batch,
    interleave_batch,
    map_batch,
    puncture_batch,
    scramble_batch,
)
from repro.mc.sweep import CodedOfdmPipeline, run_sweep
from repro.mc.viterbi import BatchViterbiDecoder, encode_batch
from repro.wifi.ofdm.rates import OfdmRate

STRICT = "array-api-strict"


class TestRegistry:
    def test_numpy_always_present_and_first(self):
        assert "numpy" in BACKENDS
        assert backend_names()[0] == "numpy"

    def test_strict_backend_always_registered(self):
        # Real package or internal shim — the conformance path always exists.
        assert STRICT in BACKENDS

    def test_unknown_backend_raises_with_available_list(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            get_backend("warp-drive")

    def test_default_backend_is_numpy_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend().name == "numpy"

    def test_default_backend_honours_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, STRICT)
        assert default_backend().name == STRICT

    def test_env_var_with_unknown_name_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "warp-drive")
        with pytest.raises(ConfigurationError, match="warp-drive"):
            default_backend()


class TestNamespaceResolution:
    def test_none_resolves_to_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert get_namespace(None) is np

    def test_name_resolves_to_registered_namespace(self):
        assert get_namespace("numpy") is np
        assert get_namespace(STRICT) is BACKENDS[STRICT].xp

    def test_numpy_array_resolves_to_numpy(self):
        assert get_namespace(np.arange(3)) is np

    def test_unresolvable_object_raises(self):
        with pytest.raises(ConfigurationError, match="array namespace"):
            get_namespace(object())

    def test_resolve_namespace_passes_namespaces_through(self):
        assert resolve_namespace(np) is np
        assert resolve_namespace("numpy") is np

    def test_strict_shim_blocks_numpy_extensions(self):
        xp = BACKENDS[STRICT].xp
        assert callable(xp.concat) and callable(xp.take)
        if BACKENDS[STRICT].simulated:
            with pytest.raises(AttributeError, match="array-API"):
                xp.ravel  # noqa: B018 — attribute access is the assertion

    def test_to_numpy_is_identity_for_numpy(self):
        array = np.arange(4.0)
        assert to_numpy(array) is array

    def test_to_numpy_converts_strict_arrays(self):
        xp = BACKENDS[STRICT].xp
        converted = to_numpy(xp.asarray(np.arange(4.0)))
        np.testing.assert_array_equal(converted, np.arange(4.0))


class TestEngineBackendPolicy:
    def test_scalar_engine_rejects_non_numpy_backend(self):
        with pytest.raises(ConfigurationError, match="numpy only"):
            resolve_engine_backend("fig14", "scalar", STRICT)

    def test_scalar_engine_accepts_numpy(self):
        assert resolve_engine_backend("fig14", "scalar", "numpy") is np

    def test_batch_engine_accepts_any_backend(self):
        assert resolve_engine_backend("fig14", "batch", STRICT) is BACKENDS[STRICT].xp

    def test_default_backend_resolution(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_engine_backend("fig14", "batch", None) is np


def _strict_xp():
    return BACKENDS[STRICT].xp


class TestKernelParity:
    """Every kernel produces bit-identical output on numpy and the strict namespace."""

    def test_viterbi_chain_parity(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(8, 96), dtype=np.uint8)
        decoder = BatchViterbiDecoder()
        reference = to_numpy(decoder.decode_batch(encode_batch(bits, xp=np), xp=np))
        strict = to_numpy(
            decoder.decode_batch(encode_batch(bits, xp=_strict_xp()), xp=_strict_xp())
        )
        np.testing.assert_array_equal(reference, strict)
        np.testing.assert_array_equal(reference, bits)

    @pytest.mark.parametrize("rate", [OfdmRate.RATE_6, OfdmRate.RATE_12, OfdmRate.RATE_36, OfdmRate.RATE_54])
    def test_map_demap_parity(self, rate):
        params = rate.parameters
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, size=(6, params.coded_bits_per_symbol), dtype=np.uint8)
        symbols_np = map_batch(bits, params.modulation, xp=np)
        symbols_strict = to_numpy(map_batch(bits, params.modulation, xp=_strict_xp()))
        np.testing.assert_array_equal(symbols_np, symbols_strict)
        hard_np = demap_batch(symbols_np, params.modulation, xp=np)
        hard_strict = to_numpy(demap_batch(_strict_xp().asarray(symbols_np), params.modulation, xp=_strict_xp()))
        np.testing.assert_array_equal(hard_np, hard_strict)
        soft_np = demap_soft_batch(symbols_np, params.modulation, noise_var=0.5, xp=np)
        soft_strict = to_numpy(
            demap_soft_batch(_strict_xp().asarray(symbols_np), params.modulation, noise_var=0.5, xp=_strict_xp())
        )
        np.testing.assert_array_equal(soft_np, soft_strict)

    def test_interleave_scramble_puncture_parity(self):
        rng = np.random.default_rng(23)
        bits = rng.integers(0, 2, size=(5, 192), dtype=np.uint8)
        seeds = rng.integers(1, 128, size=5)
        for xp in (np, _strict_xp()):
            interleaved = interleave_batch(bits, 4, xp=xp)
            np.testing.assert_array_equal(to_numpy(deinterleave_batch(interleaved, 4, xp=xp)), bits)
            np.testing.assert_array_equal(
                to_numpy(scramble_batch(scramble_batch(bits, seeds, xp=xp), seeds, xp=xp)), bits
            )
            punctured = puncture_batch(bits, "3/4", xp=xp)
            full, known = depuncture_batch(punctured, "3/4", xp=xp)
            np.testing.assert_array_equal(to_numpy(full)[:, known], bits[:, known])
        np.testing.assert_array_equal(
            to_numpy(puncture_batch(bits, "3/4", xp=_strict_xp())), puncture_batch(bits, "3/4", xp=np)
        )


class TestSweepParity:
    """The full coded-OFDM sweep is float-identical across backends."""

    @pytest.mark.parametrize("decision", ["hard", "soft"])
    def test_coded_ofdm_sweep_identical(self, decision):
        points = np.array([2.0, 5.0])
        results = {}
        for backend in ("numpy", STRICT):
            pipeline = CodedOfdmPipeline(OfdmRate.RATE_12, num_symbols=2, statistic="ber", decision=decision)
            results[backend] = run_sweep(points, 64, pipeline, seed=3, xp=backend)
        np.testing.assert_array_equal(results["numpy"].error_rate, results[STRICT].error_rate)
        np.testing.assert_array_equal(results["numpy"].std_error, results[STRICT].std_error)

    def test_analytic_pipeline_ignores_backend(self):
        from repro.mc.sweep import AnalyticWifiPerPipeline

        pipeline = AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=1000)
        a = run_sweep(np.array([5.0]), 128, pipeline, seed=1)
        b = run_sweep(np.array([5.0]), 128, pipeline, seed=1, xp=STRICT)
        np.testing.assert_array_equal(a.error_rate, b.error_rate)
