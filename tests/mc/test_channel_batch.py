"""Tests for the vectorised link-budget helpers and the experiment engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.channel.link_budget import BackscatterLinkBudget, DirectLinkBudget
from repro.channel.propagation import PathLossModel
from repro.experiments import fig11_per, fig13_downlink_ber, fig14_zigbee_rssi
from repro.mc import backscatter_link_batch, direct_rssi_batch


class TestBackscatterLinkBatch:
    def test_matches_scalar_without_shadowing(self):
        budget = BackscatterLinkBudget(source_power_dbm=10.0)
        distances = np.array([0.5, 2.0, 8.0])
        batch = backscatter_link_batch(budget, 0.3, distances)
        for index, distance in enumerate(distances):
            scalar = budget.evaluate(0.3, float(distance))
            assert batch.rssi_dbm[index] == scalar.rssi_dbm
            assert batch.incident_power_dbm[index] == scalar.incident_power_dbm
            assert batch.snr_db[index] == scalar.snr_db
            assert bool(batch.detectable[index]) == scalar.detectable

    def test_shadowing_statistics_match_scalar(self):
        budget = BackscatterLinkBudget(
            source_power_dbm=4.0, path_loss=PathLossModel(shadowing_sigma_db=4.0)
        )
        rng_scalar = np.random.default_rng(0)
        rng_batch = np.random.default_rng(1)
        scalar = np.array(
            [budget.evaluate(0.3, 5.0, rng=rng_scalar).rssi_dbm for _ in range(4000)]
        )
        batch = backscatter_link_batch(
            budget, 0.3, np.full(4000, 5.0), rng=rng_batch
        ).rssi_dbm
        assert abs(scalar.mean() - batch.mean()) < 0.5
        assert abs(scalar.std() - batch.std()) < 0.5

    def test_omitted_rng_still_draws_shadowing(self):
        # Parity with PathLossModel.loss_db: no rng means an unseeded draw,
        # not silently disabled shadowing.
        budget = BackscatterLinkBudget(path_loss=PathLossModel(shadowing_sigma_db=4.0))
        rssi = backscatter_link_batch(budget, 0.3, np.full(500, 5.0)).rssi_dbm
        assert float(np.std(rssi)) > 1.0

    def test_scalar_hop_broadcasts(self):
        budget = BackscatterLinkBudget()
        batch = backscatter_link_batch(budget, 0.3, np.array([1.0, 2.0]))
        assert batch.rssi_dbm.shape == (2,)
        assert batch.rssi_dbm[0] > batch.rssi_dbm[1]


class TestDirectRssiBatch:
    def test_matches_scalar(self):
        budget = DirectLinkBudget(tx_power_dbm=20.0)
        distances = np.array([0.5, 3.0, 7.5])
        batch = direct_rssi_batch(budget, distances)
        for index, distance in enumerate(distances):
            assert batch[index] == budget.received_power_dbm(float(distance))


class TestExperimentEngines:
    """The batch engine must agree with the scalar loop up to MC noise."""

    def test_fig11_batch_matches_scalar_distribution(self):
        scalar = fig11_per.run(num_locations=300, num_packets=100, engine="scalar")
        batch = fig11_per.run(num_locations=300, num_packets=100, engine="batch")
        for rate in (2.0, 11.0):
            assert abs(scalar.median_per[rate] - batch.median_per[rate]) < 0.1
            assert (
                abs(
                    float(np.mean(scalar.per_by_rate[rate]))
                    - float(np.mean(batch.per_by_rate[rate]))
                )
                < 0.08
            )

    def test_fig13_batch_matches_scalar_curve(self):
        scalar = fig13_downlink_ber.run(engine="scalar")
        batch = fig13_downlink_ber.run(engine="batch")
        assert np.array_equal(scalar.distances_feet, batch.distances_feet)
        # Identical analytic RSSI/BER inputs; only the binomial draws differ.
        assert np.allclose(scalar.rssi_dbm, batch.rssi_dbm)
        assert abs(scalar.range_below_1pct_feet - batch.range_below_1pct_feet) <= 2.0
        assert np.all(np.abs(scalar.ber - batch.ber) < 0.12)

    def test_fig14_batch_matches_scalar_distribution(self):
        scalar = fig14_zigbee_rssi.run(packets_per_location=200, engine="scalar")
        batch = fig14_zigbee_rssi.run(packets_per_location=200, engine="batch")
        assert abs(scalar.median_rssi_dbm - batch.median_rssi_dbm) < 1.0
        assert abs(scalar.detectable_fraction - batch.detectable_fraction) < 0.05

    def test_unknown_engine_rejected(self):
        for runner in (fig11_per.run, fig13_downlink_ber.run, fig14_zigbee_rssi.run):
            with pytest.raises(ConfigurationError):
                runner(engine="warp")
