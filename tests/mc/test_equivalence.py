"""Property-style scalar/vector equivalence tests for the repro.mc kernels.

Every batched kernel must be *bit-identical* to the scalar implementation it
replaces — including tie-breaking inside the Viterbi survivor selection and
the demapper's nearest-level quantiser.  Each test sweeps randomised
codewords/symbols and compares row by row against the scalar path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mc import (
    BatchViterbiDecoder,
    deinterleave_batch,
    demap_batch,
    depuncture_batch,
    encode_batch,
    interleave_batch,
    map_batch,
    puncture_batch,
    scramble_batch,
)
from repro.wifi.ofdm.convolutional import (
    ConvolutionalEncoder,
    PUNCTURE_PATTERNS,
    ViterbiDecoder,
    depuncture,
    puncture,
)
from repro.wifi.ofdm.interleaver import deinterleave, interleave
from repro.wifi.ofdm.mapping import Modulation, demap_symbols, map_bits
from repro.wifi.scrambler import Ieee80211Scrambler


@pytest.fixture(scope="module")
def batch_viterbi() -> BatchViterbiDecoder:
    return BatchViterbiDecoder()


@pytest.fixture(scope="module")
def scalar_viterbi() -> ViterbiDecoder:
    return ViterbiDecoder()


class TestEncoderEquivalence:
    def test_random_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, (16, 120), dtype=np.uint8)
        batched = encode_batch(bits)
        for row, reference in zip(batched, bits, strict=True):
            assert np.array_equal(row, ConvolutionalEncoder().encode(reference))

    def test_history_preload_matches_scalar(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, (8, 48), dtype=np.uint8)
        histories = rng.integers(0, 2, (8, 6), dtype=np.uint8)
        batched = encode_batch(bits, initial_history=histories)
        for row, reference, history in zip(batched, bits, histories, strict=True):
            assert np.array_equal(
                row, ConvolutionalEncoder(initial_history=history).encode(reference)
            )

    def test_all_ones_constant_symbol_property(self):
        # The §2.4 invariant the downlink relies on: all-ones input with
        # all-ones history stays all ones through the encoder.
        ones = np.ones((1, 64), dtype=np.uint8)
        out = encode_batch(ones, initial_history=np.ones(6, dtype=np.uint8))
        assert np.all(out == 1)


class TestViterbiEquivalence:
    @pytest.mark.parametrize("flip_probability", [0.0, 0.02, 0.08, 0.2])
    def test_bit_identical_across_noise_levels(
        self, batch_viterbi, scalar_viterbi, flip_probability
    ):
        rng = np.random.default_rng(int(flip_probability * 1000) + 3)
        bits = rng.integers(0, 2, (12, 96), dtype=np.uint8)
        coded = encode_batch(bits)
        noisy = coded ^ (rng.random(coded.shape) < flip_probability).astype(np.uint8)
        decoded = batch_viterbi.decode_batch(noisy)
        for row, reference in zip(decoded, noisy, strict=True):
            assert np.array_equal(row, scalar_viterbi.decode(reference))

    @pytest.mark.parametrize("rate", sorted(PUNCTURE_PATTERNS))
    def test_bit_identical_across_puncturing_patterns(
        self, batch_viterbi, scalar_viterbi, rate
    ):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, (10, 96), dtype=np.uint8)
        noisy = encode_batch(bits) ^ (rng.random((10, 192)) < 0.05).astype(np.uint8)
        full_batch, mask_batch = depuncture_batch(puncture_batch(noisy, rate), rate)
        decoded = batch_viterbi.decode_batch(full_batch, known_mask=mask_batch)
        for index in range(bits.shape[0]):
            full, mask = depuncture(puncture(noisy[index], rate), rate)
            assert np.array_equal(full_batch[index], full)
            assert np.array_equal(mask_batch, mask)
            assert np.array_equal(decoded[index], scalar_viterbi.decode(full, known_mask=mask))

    def test_initial_state_matches_scalar(self, batch_viterbi, scalar_viterbi):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, (4, 48), dtype=np.uint8)
        noisy = encode_batch(bits) ^ (rng.random((4, 96)) < 0.1).astype(np.uint8)
        for initial_state in (0, 17, 63):
            decoded = batch_viterbi.decode_batch(noisy, initial_state=initial_state)
            for row, reference in zip(decoded, noisy, strict=True):
                assert np.array_equal(
                    row, scalar_viterbi.decode(reference, initial_state=initial_state)
                )

    def test_recovers_clean_codewords(self, batch_viterbi):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, (6, 200), dtype=np.uint8)
        assert np.array_equal(batch_viterbi.decode_batch(encode_batch(bits)), bits)

    def test_rejects_odd_length(self, batch_viterbi):
        with pytest.raises(ValueError):
            batch_viterbi.decode_batch(np.zeros((2, 5), dtype=np.uint8))


class TestMappingEquivalence:
    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_map_matches_scalar(self, modulation):
        rng = np.random.default_rng(11)
        bits = rng.integers(0, 2, (10, 48 * modulation.bits_per_symbol), dtype=np.uint8)
        batched = map_batch(bits, modulation)
        for row, reference in zip(batched, bits, strict=True):
            assert np.allclose(row, map_bits(reference, modulation))

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_demap_matches_scalar_under_noise(self, modulation):
        rng = np.random.default_rng(13)
        bits = rng.integers(0, 2, (10, 48 * modulation.bits_per_symbol), dtype=np.uint8)
        symbols = map_batch(bits, modulation)
        noisy = symbols + 0.4 * (
            rng.standard_normal(symbols.shape) + 1j * rng.standard_normal(symbols.shape)
        )
        batched = demap_batch(noisy, modulation)
        for row, reference in zip(batched, noisy, strict=True):
            assert np.array_equal(row, demap_symbols(reference, modulation))

    @pytest.mark.parametrize("modulation", [Modulation.QAM16, Modulation.QAM64])
    def test_demap_tie_break_on_level_midpoints(self, modulation):
        # Points exactly between two levels must snap the same way the
        # scalar argmin does (to the lower level).
        half = modulation.bits_per_symbol // 2
        edge = (1.0 + 3.0) / 2.0 * modulation.normalization
        symbols = np.array([[edge + 1j * edge, -edge - 1j * edge, 0.0 + 0.0j]])
        assert np.array_equal(
            demap_batch(symbols, modulation)[0], demap_symbols(symbols[0], modulation)
        )
        assert half in (2, 3)

    def test_round_trip(self):
        rng = np.random.default_rng(17)
        for modulation in Modulation:
            bits = rng.integers(0, 2, (4, 24 * modulation.bits_per_symbol), dtype=np.uint8)
            assert np.array_equal(demap_batch(map_batch(bits, modulation), modulation), bits)


class TestInterleaverEquivalence:
    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4), (288, 6)])
    def test_matches_scalar(self, n_cbps, n_bpsc):
        rng = np.random.default_rng(19)
        bits = rng.integers(0, 2, (8, n_cbps), dtype=np.uint8)
        interleaved = interleave_batch(bits, n_bpsc)
        deinterleaved = deinterleave_batch(bits, n_bpsc)
        for index in range(bits.shape[0]):
            assert np.array_equal(interleaved[index], interleave(bits[index], n_bpsc))
            assert np.array_equal(deinterleaved[index], deinterleave(bits[index], n_bpsc))
        assert np.array_equal(deinterleave_batch(interleaved, n_bpsc), bits)


class TestScramblerEquivalence:
    def test_per_row_seeds_match_scalar(self):
        rng = np.random.default_rng(23)
        bits = rng.integers(0, 2, (16, 257), dtype=np.uint8)
        seeds = rng.integers(1, 128, 16)
        scrambled = scramble_batch(bits, seeds)
        for row, reference, seed in zip(scrambled, bits, seeds, strict=True):
            assert np.array_equal(row, Ieee80211Scrambler(int(seed)).scramble(reference))

    def test_shared_seed_and_involution(self):
        rng = np.random.default_rng(29)
        bits = rng.integers(0, 2, (4, 300), dtype=np.uint8)
        scrambled = scramble_batch(bits, 0x5D)
        assert np.array_equal(scramble_batch(scrambled, 0x5D), bits)
        assert np.array_equal(scrambled[0], Ieee80211Scrambler(0x5D).scramble(bits[0]))


class TestFullChainEquivalence:
    @pytest.mark.parametrize("rate", ["1/2", "2/3", "3/4"])
    def test_scramble_encode_puncture_chain(self, rate):
        """The composed batched TX chain equals the composed scalar TX chain."""
        rng = np.random.default_rng(31)
        bits = rng.integers(0, 2, (6, 96), dtype=np.uint8)
        seeds = rng.integers(1, 128, 6)
        batched = puncture_batch(encode_batch(scramble_batch(bits, seeds)), rate)
        for index in range(bits.shape[0]):
            scrambled = Ieee80211Scrambler(int(seeds[index])).scramble(bits[index])
            reference = puncture(ConvolutionalEncoder().encode(scrambled), rate)
            assert np.array_equal(batched[index], reference)
