"""Tests for the PER-table link abstraction and its netsim fast path."""

from __future__ import annotations

import numpy as np
import pytest

import repro.netsim.medium as medium_module
from repro.exceptions import ConfigurationError
from repro.channel.error_models import wifi_packet_error_rate
from repro.mc import LinkAbstraction
from repro.netsim.fleet import FleetScenario, FleetSimulator
from repro.netsim.medium import SharedMedium


class TestLinkAbstraction:
    def test_table_matches_analytic_model(self):
        abstraction = LinkAbstraction()
        for sinr in (-8.0, -3.5, 0.25, 6.0, 14.7):
            exact = wifi_packet_error_rate(sinr, rate_mbps=2.0, payload_bytes=37)
            approx = abstraction.per(sinr, rate_mbps=2.0, payload_bytes=37)
            assert abs(exact - approx) < 2e-3

    def test_tables_are_memoised_per_link_class(self):
        abstraction = LinkAbstraction()
        abstraction.per(3.0, rate_mbps=2.0, payload_bytes=37)
        abstraction.per(5.0, rate_mbps=2.0, payload_bytes=37)
        assert abstraction.tables_built == 1
        abstraction.per(5.0, rate_mbps=11.0, payload_bytes=37)
        abstraction.per(5.0, rate_mbps=2.0, payload_bytes=64)
        assert abstraction.tables_built == 3
        assert abstraction.lookups == 4

    def test_out_of_grid_clamps_to_edges(self):
        abstraction = LinkAbstraction()
        low = abstraction.per(-60.0, rate_mbps=2.0, payload_bytes=37)
        high = abstraction.per(80.0, rate_mbps=2.0, payload_bytes=37)
        assert low == pytest.approx(1.0, abs=1e-6)
        assert high == pytest.approx(0.0, abs=1e-9)

    def test_vectorised_lookup(self):
        abstraction = LinkAbstraction()
        sinrs = np.array([-5.0, 0.0, 5.0])
        values = abstraction.per_array(sinrs, rate_mbps=2.0, payload_bytes=37)
        assert values.shape == sinrs.shape
        assert np.all(np.diff(values) <= 0.0)

    def test_monte_carlo_table_tracks_analytic(self):
        mc = LinkAbstraction(bin_width_db=2.0, sinr_min_db=-10, sinr_max_db=10, mc_trials=2000)
        exact = LinkAbstraction(bin_width_db=2.0, sinr_min_db=-10, sinr_max_db=10)
        for sinr in (-6.0, -2.0, 2.0):
            assert abs(
                mc.per(sinr, rate_mbps=2.0, payload_bytes=37)
                - exact.per(sinr, rate_mbps=2.0, payload_bytes=37)
            ) < 0.05

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            LinkAbstraction(sinr_min_db=5.0, sinr_max_db=-5.0)
        with pytest.raises(ConfigurationError):
            LinkAbstraction(bin_width_db=0.0)


class TestMediumFastPath:
    def _one_packet_outcome(self, medium, rng):
        tx = medium.begin(
            device_id=0, rssi_dbm=-70.0, duration_s=1e-3, psdu_bytes=37, rate_mbps=2.0, now=0.0
        )
        return medium.end(tx, now=1e-3, rng=rng)

    def test_fast_path_equivalent_outcomes(self):
        exact = self._one_packet_outcome(SharedMedium(), np.random.default_rng(1))
        fast = self._one_packet_outcome(
            SharedMedium(link_abstraction=LinkAbstraction()), np.random.default_rng(1)
        )
        assert fast.delivered == exact.delivered
        assert fast.sinr_db == exact.sinr_db
        assert abs(fast.packet_error_rate - exact.packet_error_rate) < 2e-3

    def test_fast_path_skips_per_packet_phy(self, monkeypatch):
        calls = {"n": 0}
        original = medium_module.wifi_packet_error_rate

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(medium_module, "wifi_packet_error_rate", counting)
        medium = SharedMedium(link_abstraction=LinkAbstraction())
        rng = np.random.default_rng(2)
        for _ in range(5):
            self._one_packet_outcome(medium, rng)
        assert calls["n"] == 0
        assert medium.link_abstraction.lookups == 5


class TestFleetFastPath:
    def test_fleet_metrics_match_exact_path(self):
        base = dict(num_devices=25, duration_s=1.0, mac="slotted_aloha", seed=99)
        exact = FleetSimulator(FleetScenario(**base)).run().aggregate()
        sim = FleetSimulator(FleetScenario(**base, phy_fast_path=True))
        fast = sim.run().aggregate()
        # Same seed, same event sequence; the table PER differs from the
        # exact model by < 2e-3, so the Bernoulli draws land identically.
        assert fast.generated == exact.generated
        assert fast.delivered == exact.delivered
        assert sim.link_abstraction is not None
        assert sim.link_abstraction.tables_built == 1
        assert sim.link_abstraction.lookups > 0

    def test_fast_path_off_by_default(self):
        sim = FleetSimulator(FleetScenario(num_devices=2, duration_s=0.2))
        assert sim.link_abstraction is None
        assert sim.medium.link_abstraction is None
