"""Tests for soft-decision batched Viterbi and the LLR demapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mc.kernels import demap_batch, demap_soft_batch, depuncture_batch, puncture_batch
from repro.mc.sweep import CodedOfdmPipeline, run_sweep
from repro.mc.viterbi import BatchViterbiDecoder, encode_batch
from repro.wifi.ofdm.mapping import Modulation
from repro.wifi.ofdm.rates import OfdmRate


class TestLlrDemapper:
    @pytest.mark.parametrize(
        "modulation", [Modulation.BPSK, Modulation.QPSK, Modulation.QAM16, Modulation.QAM64]
    )
    def test_llr_sign_matches_hard_decision(self, modulation):
        # Positive LLR ⇔ bit 1, so thresholding the LLRs at zero must
        # reproduce the hard demapper on noisy symbols.
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(16, 24 * modulation.bits_per_symbol), dtype=np.uint8)
        from repro.mc.kernels import map_batch

        symbols = map_batch(bits, modulation)
        noisy = symbols + 0.05 * (rng.standard_normal(symbols.shape) + 1j * rng.standard_normal(symbols.shape))
        hard = demap_batch(noisy, modulation)
        llrs = demap_soft_batch(noisy, modulation, noise_var=0.5)
        np.testing.assert_array_equal((llrs > 0).astype(np.uint8), hard)

    def test_noise_var_scales_confidence_not_sign(self):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, size=(4, 48), dtype=np.uint8)
        from repro.mc.kernels import map_batch

        symbols = map_batch(bits, Modulation.QPSK)
        crisp = demap_soft_batch(symbols, Modulation.QPSK, noise_var=0.1)
        fuzzy = demap_soft_batch(symbols, Modulation.QPSK, noise_var=1.0)
        np.testing.assert_array_equal(np.sign(crisp), np.sign(fuzzy))
        assert np.all(np.abs(crisp) > np.abs(fuzzy))

    def test_noise_var_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="noise_var"):
            demap_soft_batch(np.zeros((1, 2), dtype=complex), Modulation.QPSK, noise_var=0.0)


class TestSoftDecoder:
    def test_soft_with_antipodal_llrs_equals_hard(self):
        # Equal-magnitude ±1 LLRs carry exactly the hard bits' information:
        # each step's soft branch cost is a positive affine map of the hard
        # mismatch count, so the trellis decisions (ties included) must
        # coincide — even with real bit errors in the stream.
        rng = np.random.default_rng(13)
        bits = rng.integers(0, 2, size=(12, 96), dtype=np.uint8)
        flipped = encode_batch(bits) ^ (rng.random((12, 192)) < 0.06).astype(np.uint8)
        decoder = BatchViterbiDecoder()
        hard = decoder.decode_batch(flipped)
        soft = decoder.decode_batch(2.0 * flipped.astype(np.float64) - 1.0, soft=True)
        np.testing.assert_array_equal(hard, soft)

    def test_soft_equals_hard_under_erasure_mask(self):
        rng = np.random.default_rng(17)
        bits = rng.integers(0, 2, size=(6, 72), dtype=np.uint8)
        punctured = puncture_batch(encode_batch(bits), "3/4")
        punctured = punctured ^ (rng.random(punctured.shape) < 0.03).astype(np.uint8)
        full, known = depuncture_batch(punctured, "3/4")
        decoder = BatchViterbiDecoder()
        hard = decoder.decode_batch(full, known_mask=known)
        llrs = (2.0 * full.astype(np.float64) - 1.0) * known
        soft = decoder.decode_batch(llrs, known_mask=known, soft=True)
        np.testing.assert_array_equal(hard, soft)

    def test_confident_llrs_decode_noiselessly(self):
        rng = np.random.default_rng(19)
        bits = rng.integers(0, 2, size=(4, 48), dtype=np.uint8)
        llrs = 8.0 * (2.0 * encode_batch(bits).astype(np.float64) - 1.0)
        decoded = BatchViterbiDecoder().decode_batch(llrs, soft=True)
        np.testing.assert_array_equal(decoded, bits)


class TestSoftVsHardSweep:
    def test_soft_ber_at_or_below_hard_across_snr_grid(self):
        # Paired comparison: the pipeline draws message and noise before
        # the decision branch, so the same seed gives both receivers
        # identical channel realisations.
        points = np.arange(1.0, 7.0, 1.0)
        trials = 96
        curves = {}
        for decision in ("hard", "soft"):
            pipeline = CodedOfdmPipeline(
                OfdmRate.RATE_12, num_symbols=2, statistic="ber", decision=decision
            )
            curves[decision] = run_sweep(points, trials, pipeline, seed=2016).error_rate
        assert np.all(curves["soft"] <= curves["hard"])
        # And the advantage is real, not a tie across the board.
        assert curves["soft"].sum() < curves["hard"].sum()

    def test_decision_validated(self):
        with pytest.raises(ConfigurationError, match="decision"):
            CodedOfdmPipeline(OfdmRate.RATE_12, decision="fuzzy")
