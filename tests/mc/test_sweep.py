"""Tests for the batched Monte-Carlo sweep driver and its pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.channel.error_models import wifi_packet_error_rate
from repro.mc import (
    AnalyticWifiPerPipeline,
    CodedOfdmPipeline,
    OokBerPipeline,
    run_sweep,
)
from repro.wifi.ofdm.rates import OfdmRate


class TestRunSweep:
    def test_deterministic_in_seed(self):
        pipeline = AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=31)
        points = np.array([-6.0, -2.0, 2.0])
        first = run_sweep(points, 500, pipeline, seed=42)
        second = run_sweep(points, 500, pipeline, seed=42)
        assert np.array_equal(first.error_rate, second.error_rate)
        assert np.array_equal(first.snr_db, points)
        assert first.trials == 500

    def test_chunking_preserves_results(self):
        pipeline = AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=31)
        points = np.array([-4.0, 0.0])
        whole = run_sweep(points, 400, pipeline, seed=7)
        chunked = run_sweep(points, 400, pipeline, seed=7, max_batch=64)
        # Same RNG, same total draws, same per-point statistics.
        assert np.allclose(whole.error_rate, chunked.error_rate)

    def test_matches_analytic_per_within_noise(self):
        pipeline = AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=31)
        points = np.array([-8.0, -5.0, -3.0])
        sweep = run_sweep(points, 4000, pipeline, seed=3)
        exact = np.asarray(
            wifi_packet_error_rate(points, rate_mbps=2.0, payload_bytes=31)
        )
        assert np.all(np.abs(sweep.error_rate - exact) < 4.0 * sweep.std_error + 1e-3)

    def test_error_rate_monotone_in_snr(self):
        sweep = run_sweep(
            np.linspace(-10.0, 2.0, 7),
            2000,
            AnalyticWifiPerPipeline(rate_mbps=11.0, payload_bytes=77),
            seed=5,
        )
        assert np.all(np.diff(sweep.error_rate) <= 0.05)

    def test_rejects_bad_trials(self):
        with pytest.raises(ConfigurationError):
            run_sweep(np.array([0.0]), 0, AnalyticWifiPerPipeline(2.0, 31))


class TestOokBerPipeline:
    def test_tracks_analytic_curve(self):
        sweep = run_sweep(
            np.array([-2.0, 4.0, 10.0]), 300, OokBerPipeline(bits_per_trial=256), seed=11
        )
        assert sweep.error_rate[0] > sweep.error_rate[-1]
        assert 0.0 <= sweep.error_rate[-1] < 0.2


class TestCodedOfdmPipeline:
    def test_per_cliff_with_snr(self):
        """The full batched chain decodes cleanly at high SNR, fails at low."""
        pipeline = CodedOfdmPipeline(OfdmRate.RATE_12, num_symbols=2)
        sweep = run_sweep(np.array([-4.0, 20.0]), 60, pipeline, seed=13)
        assert sweep.error_rate[0] > 0.5
        assert sweep.error_rate[-1] == 0.0

    def test_ber_statistic_below_per(self):
        per_pipe = CodedOfdmPipeline(OfdmRate.RATE_12, num_symbols=2, statistic="per")
        ber_pipe = CodedOfdmPipeline(OfdmRate.RATE_12, num_symbols=2, statistic="ber")
        per = per_pipe.run_batch(4.0, 50, np.random.default_rng(1))
        ber = ber_pipe.run_batch(4.0, 50, np.random.default_rng(1))
        assert np.all(ber <= per + 1e-12)

    def test_rate_parameter_coercion_and_validation(self):
        assert CodedOfdmPipeline(36.0).rate is OfdmRate.RATE_36
        with pytest.raises(ConfigurationError):
            CodedOfdmPipeline(OfdmRate.RATE_12, statistic="nope")
        with pytest.raises(ConfigurationError):
            CodedOfdmPipeline(OfdmRate.RATE_12, num_symbols=0)
