"""Tests for run_sweep's keyword-only signature (the positional shim is gone)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.mc.sweep import AnalyticWifiPerPipeline, run_sweep

POINTS = np.array([4.0, 8.0])


def _pipeline() -> AnalyticWifiPerPipeline:
    return AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=1000)


class TestKeywordOnly:
    def test_keyword_call_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep(POINTS, 32, _pipeline(), seed=5, max_batch=16)

    def test_rng_keyword_matches_seed_construction(self):
        by_rng = run_sweep(POINTS, 32, _pipeline(), rng=np.random.default_rng(5))
        by_seed = run_sweep(POINTS, 32, _pipeline(), seed=5)
        np.testing.assert_array_equal(by_rng.error_rate, by_seed.error_rate)

    def test_positional_rng_is_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            run_sweep(POINTS, 32, _pipeline(), np.random.default_rng(5))

    def test_positional_seed_and_max_batch_are_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            run_sweep(POINTS, 32, _pipeline(), None, 9, 8)
