"""Tests for run_sweep's keyword-only signature and its deprecation shim."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.mc.sweep import AnalyticWifiPerPipeline, run_sweep

POINTS = np.array([4.0, 8.0])


def _pipeline() -> AnalyticWifiPerPipeline:
    return AnalyticWifiPerPipeline(rate_mbps=2.0, payload_bytes=1000)


class TestKeywordOnly:
    def test_keyword_call_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_sweep(POINTS, 32, _pipeline(), seed=5, max_batch=16)

    def test_positional_legacy_args_warn_and_still_work(self):
        rng = np.random.default_rng(5)
        with pytest.warns(DeprecationWarning, match="keyword-only"):
            legacy = run_sweep(POINTS, 32, _pipeline(), rng)
        modern = run_sweep(POINTS, 32, _pipeline(), rng=np.random.default_rng(5))
        np.testing.assert_array_equal(legacy.error_rate, modern.error_rate)

    def test_positional_seed_and_max_batch_map_in_order(self):
        with pytest.warns(DeprecationWarning):
            legacy = run_sweep(POINTS, 32, _pipeline(), None, 9, 8)
        modern = run_sweep(POINTS, 32, _pipeline(), seed=9, max_batch=8)
        np.testing.assert_array_equal(legacy.error_rate, modern.error_rate)

    def test_double_assignment_raises(self):
        with pytest.warns(DeprecationWarning), pytest.raises(TypeError, match="multiple values"):
            run_sweep(POINTS, 32, _pipeline(), None, 9, seed=9)

    def test_too_many_positionals_raise(self):
        with pytest.raises(TypeError, match="positional"):
            run_sweep(POINTS, 32, _pipeline(), None, 9, 8, "extra")
