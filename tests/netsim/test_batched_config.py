"""Configuration surface of the epoch engines: translation and rejection.

`resolve_epoch_mac` is the compatibility shim between the heap engine's
MAC vocabulary and the epoch engine's knobs; these tests pin the
translations (seconds → epochs, accepted-and-ignored slot widths) and
every rejection branch, so a typo in a sweep grid fails loudly instead
of silently simulating the wrong protocol.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.batched import (
    EPOCH_ENGINES,
    BatchedFleetSimulator,
    EpochReferenceSimulator,
    resolve_epoch_mac,
    simulate,
)
from repro.netsim.fleet import FleetScenario


def _scenario(**overrides) -> FleetScenario:
    defaults = dict(
        profile="contact_lens", num_devices=4, mac="aloha", duration_s=0.2, seed=1
    )
    defaults.update(overrides)
    return FleetScenario(**defaults)


def test_base_backoff_seconds_translate_to_epochs():
    params = resolve_epoch_mac(_scenario(mac_params={"base_backoff_s": 0.01}), 1e-3)
    assert params.base_backoff_epochs == 10


def test_heap_engine_slot_widths_are_accepted_and_ignored():
    slotted = resolve_epoch_mac(
        _scenario(mac="slotted_aloha", mac_params={"slot_s": 5e-4}), 1e-3
    )
    assert slotted.name == "slotted_aloha"
    csma = resolve_epoch_mac(
        _scenario(mac="csma", mac_params={"backoff_slot_s": 1e-4}), 1e-3
    )
    assert csma.name == "csma"


def test_tdma_superframe_defaults_to_fleet_size():
    params = resolve_epoch_mac(_scenario(mac="tdma", num_devices=7), 1e-3)
    assert params.num_slots == 7


@pytest.mark.parametrize(
    "mac, mac_params",
    (
        ("aloha", {"unknown_knob": 1}),
        ("aloha", {"cca_reliability": 0.5}),  # CSMA-only knob
        ("aloha", {"max_attempts": 0}),
        ("aloha", {"queue_limit": 0}),
        ("aloha", {"duty_cycle": 0.0}),
        ("aloha", {"duty_cycle": 1.5}),
        ("aloha", {"base_backoff_epochs": 0}),
        ("csma", {"min_be": 4, "max_be": 2}),
        ("csma", {"max_cca_attempts": 0}),
        ("csma", {"cca_reliability": 1.5}),
        ("tdma", {"num_slots": 0}),
    ),
)
def test_invalid_mac_params_are_rejected(mac, mac_params):
    with pytest.raises(ConfigurationError):
        resolve_epoch_mac(_scenario(mac=mac, mac_params=mac_params), 1e-3)


def test_unknown_mac_policy_is_rejected():
    with pytest.raises(ConfigurationError):
        resolve_epoch_mac(_scenario(mac="token_ring"), 1e-3)


def test_epoch_must_cover_one_air_time():
    with pytest.raises(ConfigurationError):
        BatchedFleetSimulator(_scenario(), epoch_s=1e-9)


@pytest.mark.parametrize("overrides", ({"num_devices": 0}, {"duration_s": 0.0}))
def test_degenerate_scenarios_are_rejected(overrides):
    with pytest.raises(ConfigurationError):
        BatchedFleetSimulator(_scenario(**overrides))


def test_simulate_rejects_unknown_engine():
    with pytest.raises(ConfigurationError):
        simulate(_scenario(engine="warp_drive"))


def test_engine_table_names_both_epoch_engines():
    assert EPOCH_ENGINES == {
        "batched": BatchedFleetSimulator,
        "reference": EpochReferenceSimulator,
    }


def test_epoch_trace_disabled_by_default():
    sim = BatchedFleetSimulator(_scenario())
    sim.run()
    assert sim.epoch_trace is None
    assert sim.epochs_processed > 0
