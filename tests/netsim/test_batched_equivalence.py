"""Differential lockdown: batched epoch engine vs its scalar oracle.

The vectorised :class:`repro.netsim.batched.BatchedFleetSimulator` and the
scalar :class:`repro.netsim.batched.EpochReferenceSimulator` implement one
documented epoch contract (see the module docstring of
:mod:`repro.netsim.batched`).  These tests pin the two engines to each
other **bit-for-bit** — per-device counters, byte totals and latency sums
via :meth:`repro.netsim.metrics.FleetMetrics.fingerprint` — across a
seed × MAC × density matrix, MAC-knob presets (imperfect CCA, abort
ladders, duty cycles) and the bursty card-to-card profile.  Any divergence
is a bug in one of the engines, never tolerance noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Runner
from repro.api.store import invocation_key
from repro.netsim.batched import (
    BatchedFleetSimulator,
    EpochReferenceSimulator,
    simulate,
)
from repro.netsim.fleet import FleetScenario

SEEDS = (1, 7, 2016, 90210, 424242)

MACS = ("aloha", "slotted_aloha", "csma", "tdma")

#: (num_devices, period_s): tiny saturated fleets through light 64-device ones.
FLEETS = ((4, 0.004), (8, 0.02), (16, 0.05), (32, 0.02), (64, 0.1))


def _fingerprints(scenario: FleetScenario):
    batched = BatchedFleetSimulator(scenario).run()
    reference = EpochReferenceSimulator(scenario).run()
    return batched.fingerprint(), reference.fingerprint()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mac", MACS)
@pytest.mark.parametrize("fleet", FLEETS, ids=lambda f: f"n{f[0]}-p{f[1]}")
def test_engines_bit_identical_across_matrix(seed, mac, fleet):
    num_devices, period_s = fleet
    scenario = FleetScenario(
        profile="contact_lens",
        num_devices=num_devices,
        mac=mac,
        duration_s=0.4,
        period_s=period_s,
        seed=seed,
    )
    batched, reference = _fingerprints(scenario)
    assert batched == reference


#: Contention-realism presets: every knob of EpochMacParams is exercised.
KNOB_CASES = (
    ("aloha", {"base_backoff_epochs": 1, "max_attempts": 3}),
    ("aloha", {"duty_cycle": 0.05}),
    ("aloha", {"queue_limit": 2}),
    ("slotted_aloha", {"max_attempts": 2, "queue_limit": 3}),
    ("slotted_aloha", {"duty_cycle": 0.1}),
    ("csma", {"cca_reliability": 0.8}),
    ("csma", {"max_cca_attempts": 2, "queue_limit": 4}),
    ("csma", {"min_be": 1, "max_be": 3}),
    ("tdma", {"num_slots": 4}),
    ("tdma", {"duty_cycle": 0.2}),
)


@pytest.mark.parametrize("seed", (3, 11, 2016))
@pytest.mark.parametrize("case", KNOB_CASES, ids=lambda c: f"{c[0]}-{'-'.join(c[1])}")
def test_engines_bit_identical_with_contention_knobs(seed, case):
    mac, mac_params = case
    scenario = FleetScenario(
        profile="contact_lens",
        num_devices=12,
        mac=mac,
        duration_s=0.4,
        period_s=0.01,
        seed=seed,
        mac_params=dict(mac_params),
    )
    batched, reference = _fingerprints(scenario)
    assert batched == reference


@pytest.mark.parametrize("seed", (5, 23))
@pytest.mark.parametrize("mac", MACS)
def test_engines_bit_identical_on_bursty_profile(seed, mac):
    scenario = FleetScenario(
        profile="card_to_card",
        num_devices=10,
        mac=mac,
        duration_s=0.4,
        period_s=0.05,
        seed=seed,
    )
    batched, reference = _fingerprints(scenario)
    assert batched == reference


def test_simulate_dispatches_on_scenario_engine():
    kwargs = dict(
        profile="contact_lens", num_devices=6, mac="slotted_aloha", duration_s=0.3, seed=9
    )
    batched = simulate(FleetScenario(engine="batched", **kwargs))
    reference = simulate(FleetScenario(engine="reference", **kwargs))
    assert batched.fingerprint() == reference.fingerprint()


_FAST_DENSITY = {"densities": (5, 10, 25), "period_s": 0.005, "duration_s": 0.5}


def test_mac_density_payloads_identical_across_engines():
    runner = Runner()
    batched = runner.run("mac_density", params=dict(_FAST_DENSITY), engine="batched")
    reference = runner.run("mac_density", params=dict(_FAST_DENSITY), engine="reference")
    for mac in batched.payload.macs:
        for metric in ("delivery_ratio", "throughput_bps", "attempt_per", "utilization"):
            assert np.array_equal(
                getattr(batched.payload, metric)[mac],
                getattr(reference.payload, metric)[mac],
            ), (mac, metric)


def test_cross_engine_envelopes_differ_only_in_engine():
    # The invocation identity (experiment, seed, params) of the same sweep
    # run on two engines must agree on everything except the engine field,
    # so stores keep both runs side by side under comparable keys.
    runner = Runner()
    results = [
        runner.run("mac_density", params=dict(_FAST_DENSITY), engine=engine)
        for engine in ("batched", "reference")
    ]
    keys = {
        invocation_key(r.experiment, "<engine>", r.seed, r.params, backend=r.backend)
        for r in results
    }
    assert len(keys) == 1
    assert {r.engine for r in results} == {"batched", "reference"}


def test_mac_scaling_envelopes_comparable_across_engines():
    runner = Runner()
    params = {"fleet_sizes": (2, 4), "duration_s": 0.3}
    results = [
        runner.run("mac_scaling", params=dict(params), engine=engine)
        for engine in ("scalar", "batched")
    ]
    keys = {
        invocation_key(r.experiment, "<engine>", r.seed, r.params, backend=r.backend)
        for r in results
    }
    assert len(keys) == 1
    for result in results:
        for mac in result.payload.macs:
            ratios = result.payload.delivery_ratio[mac]
            assert np.all((0.0 <= ratios) & (ratios <= 1.0))
