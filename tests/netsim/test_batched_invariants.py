"""Randomised invariants of the epoch-batched engine.

Seeded :class:`numpy.random.Generator` fuzzing (no external property
library): each trial draws a random fleet configuration — MAC, size,
offered load and the contention-realism knobs — runs the vectorised
engine and checks structural invariants that must hold for *any*
configuration:

* conservation — every generated packet is delivered, dropped, refused at
  the queue, or still pending at the horizon (per device and aggregate);
* monotone virtual time — the processed epoch sequence is strictly
  increasing and stays inside the horizon;
* duty-cycle budgets are never exceeded (up to one in-flight packet of
  slack, which is the admission granularity);
* retry counters are bounded by the abort ladder
  (``attempted <= packets_finished_or_in_progress * max_attempts``).

Each trial also cross-checks the vectorised engine against the scalar
epoch oracle, so the fuzz doubles as a randomised differential test over
knob combinations the fixed matrix never enumerates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netsim.batched import BatchedFleetSimulator, EpochReferenceSimulator
from repro.netsim.fleet import FleetScenario

TRIALS = 25

MACS = ("aloha", "slotted_aloha", "csma", "tdma")


def _random_scenario(rng: np.random.Generator) -> FleetScenario:
    mac = MACS[int(rng.integers(0, len(MACS)))]
    mac_params: dict = {
        "max_attempts": int(rng.integers(1, 9)),
        "queue_limit": int(rng.integers(1, 9)),
        "duty_cycle": float(rng.choice([1.0, 1.0, 0.5, 0.1, 0.02])),
    }
    if mac == "aloha":
        mac_params["base_backoff_epochs"] = int(rng.integers(1, 9))
    elif mac == "csma":
        min_be = int(rng.integers(0, 4))
        mac_params.update(
            min_be=min_be,
            max_be=min_be + int(rng.integers(0, 5)),
            max_cca_attempts=int(rng.integers(1, 6)),
            cca_reliability=float(rng.uniform(0.5, 1.0)),
        )
    elif mac == "tdma":
        mac_params["num_slots"] = int(rng.integers(1, 9))
    return FleetScenario(
        profile=str(rng.choice(["contact_lens", "card_to_card"])),
        num_devices=int(rng.integers(2, 41)),
        mac=mac,
        duration_s=0.3,
        period_s=float(10.0 ** rng.uniform(-2.5, -1.0)),
        seed=int(rng.integers(0, 2**31)),
        mac_params=mac_params,
    )


@pytest.fixture(params=range(TRIALS), ids=lambda i: f"trial{i}")
def fuzzed(request):
    rng = np.random.default_rng(525600 + request.param)
    scenario = _random_scenario(rng)
    sim = BatchedFleetSimulator(scenario, record_epochs=True)
    metrics = sim.run()
    return scenario, sim, metrics


def test_conservation_per_device_and_aggregate(fuzzed):
    scenario, sim, metrics = fuzzed
    for device_id, stats in metrics.devices.items():
        pending = int(sim.queue_len[device_id])
        assert stats.generated == stats.delivered + stats.dropped + stats.queue_dropped + pending, (
            scenario,
            device_id,
        )
    agg = metrics.aggregate()
    assert agg.generated == agg.delivered + agg.dropped + agg.queue_dropped + sim.pending_packets()


def test_virtual_time_is_strictly_monotone(fuzzed):
    scenario, sim, _ = fuzzed
    trace = np.asarray(sim.epoch_trace)
    assert trace.size == sim.epochs_processed
    if trace.size:
        assert np.all(np.diff(trace) > 0), scenario
        assert 0 <= trace[0] and trace[-1] < sim.setup.num_epochs


def test_duty_cycle_budget_never_exceeded(fuzzed):
    scenario, sim, _ = fuzzed
    duty = sim.params.duty_cycle
    # Admission is per packet, so a device may finish at most one packet
    # past its budget; beyond that slack the limiter failed.
    budget = duty * scenario.duration_s + sim.setup.air_time_s
    assert np.all(sim.airtime_used <= budget + 1e-12), scenario


def test_retry_counters_bounded_by_abort_ladder(fuzzed):
    scenario, sim, metrics = fuzzed
    max_attempts = sim.params.max_attempts
    for device_id, stats in metrics.devices.items():
        in_progress = 1 if sim.queue_len[device_id] else 0
        finished = stats.delivered + stats.dropped
        assert stats.attempted <= (finished + in_progress) * max_attempts, (scenario, device_id)
        assert stats.collided <= stats.attempted
        assert all(lat >= 0.0 for lat in stats.latencies_s)


def test_fuzzed_configurations_match_the_oracle(fuzzed):
    scenario, _, metrics = fuzzed
    reference = EpochReferenceSimulator(scenario).run()
    assert metrics.fingerprint() == reference.fingerprint(), scenario
