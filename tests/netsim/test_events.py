"""Event scheduler: ordering, cancellation, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.events import EventScheduler


def test_events_fire_in_time_order():
    scheduler = EventScheduler()
    trace = []
    scheduler.schedule(0.3, lambda: trace.append("c"))
    scheduler.schedule(0.1, lambda: trace.append("a"))
    scheduler.schedule(0.2, lambda: trace.append("b"))
    scheduler.run()
    assert trace == ["a", "b", "c"]
    assert scheduler.now == pytest.approx(0.3)


def test_simultaneous_events_fire_in_insertion_order():
    scheduler = EventScheduler()
    trace = []
    for label in ("first", "second", "third"):
        scheduler.schedule(1.0, lambda label=label: trace.append(label))
    scheduler.run()
    assert trace == ["first", "second", "third"]


def test_tie_break_orders_simultaneous_events_regardless_of_insertion():
    # Regression: same-timestamp events used to resolve purely by heap
    # insertion order, so whichever device scheduled first won the slot.
    scheduler = EventScheduler()
    trace = []
    for key in (5, 3, 9, 0, 7):
        scheduler.schedule(1.0, lambda key=key: trace.append(key), tie_break=key)
    scheduler.run()
    assert trace == [0, 3, 5, 7, 9]


def test_equal_tie_break_preserves_insertion_order():
    scheduler = EventScheduler()
    trace = []
    for label in ("first", "second", "third"):
        scheduler.schedule(1.0, lambda label=label: trace.append(label), tie_break=4)
    scheduler.run()
    assert trace == ["first", "second", "third"]


def test_tie_break_only_applies_within_a_timestamp():
    scheduler = EventScheduler()
    trace = []
    scheduler.schedule(0.2, lambda: trace.append("late-low-key"), tie_break=0)
    scheduler.schedule(0.1, lambda: trace.append("early-high-key"), tie_break=99)
    scheduler.run()
    assert trace == ["early-high-key", "late-low-key"]


def test_callbacks_can_schedule_more_events():
    scheduler = EventScheduler()
    trace = []

    def tick():
        trace.append(scheduler.now)
        if len(trace) < 4:
            scheduler.schedule(0.5, tick)

    scheduler.schedule(0.5, tick)
    scheduler.run()
    assert trace == pytest.approx([0.5, 1.0, 1.5, 2.0])


def test_cancelled_event_does_not_fire():
    scheduler = EventScheduler()
    trace = []
    keep = scheduler.schedule(0.1, lambda: trace.append("keep"))
    drop = scheduler.schedule(0.2, lambda: trace.append("drop"))
    drop.cancel()
    scheduler.run()
    assert trace == ["keep"]
    assert keep.cancelled is False
    assert scheduler.pending == 0


def test_run_until_leaves_later_events_and_advances_clock():
    scheduler = EventScheduler()
    trace = []
    scheduler.schedule(0.5, lambda: trace.append("early"))
    scheduler.schedule(2.0, lambda: trace.append("late"))
    executed = scheduler.run(until_s=1.0)
    assert executed == 1
    assert trace == ["early"]
    assert scheduler.now == pytest.approx(1.0)
    assert scheduler.pending == 1
    scheduler.run()
    assert trace == ["early", "late"]


def test_scheduling_in_the_past_raises():
    scheduler = EventScheduler()
    scheduler.schedule(1.0, lambda: None)
    scheduler.run()
    with pytest.raises(ConfigurationError):
        scheduler.schedule(-0.1, lambda: None)
    with pytest.raises(ConfigurationError):
        scheduler.schedule_at(0.5, lambda: None)


def test_max_events_bounds_execution():
    scheduler = EventScheduler()
    trace = []
    for i in range(10):
        scheduler.schedule(0.1 * (i + 1), lambda i=i: trace.append(i))
    assert scheduler.run(max_events=3) == 3
    assert trace == [0, 1, 2]


def test_deterministic_under_fixed_seed():
    def run_once(seed: int) -> list[tuple[float, float]]:
        rng = np.random.default_rng(seed)
        scheduler = EventScheduler()
        trace = []

        def hop():
            trace.append((scheduler.now, float(rng.random())))
            if len(trace) < 20:
                scheduler.schedule(float(rng.uniform(0.01, 0.2)), hop)

        scheduler.schedule(0.0, hop)
        scheduler.run()
        return trace

    assert run_once(99) == run_once(99)
    assert run_once(99) != run_once(100)
