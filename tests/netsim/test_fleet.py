"""Fleet scenarios: placement, profiles, determinism and MAC comparisons."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.netsim import (
    PROFILES,
    FleetScenario,
    FleetSimulator,
    ring_placement,
)


def test_ring_placement_is_deterministic_and_distinct():
    a = ring_placement(40, inner_radius_m=0.25, ring_spacing_m=0.15)
    b = ring_placement(40, inner_radius_m=0.25, ring_spacing_m=0.15)
    assert a == b
    assert len(set((p.x, p.y) for p in a)) == 40
    radii = [np.hypot(p.x, p.y) for p in a]
    # First ring holds 8 devices at the inner radius, later rings move out.
    assert radii[:8] == pytest.approx([0.25] * 8)
    assert max(radii) > 0.25


def test_profiles_build_and_carry_app_payloads():
    lens = PROFILES["contact_lens"]()
    implant = PROFILES["neural_implant"]()
    card = PROFILES["card_to_card"]()
    assert lens.payload_bytes == 8  # ContactLensReading.encode()
    assert implant.payload_bytes == 8 + 8 * 8 * 2  # NeuralFrame header + int16 samples
    assert card.payload_bytes == 3  # 18-bit payment payload
    assert card.burst_size > 1
    assert implant.wifi_rate_mbps == 11.0


def test_unknown_profile_and_mac_raise():
    with pytest.raises(ConfigurationError):
        FleetScenario(profile="smart_toaster").resolved_profile()
    with pytest.raises(ConfigurationError):
        FleetSimulator(FleetScenario(mac="token_ring", num_devices=2))


def test_same_seed_reproduces_bit_identical_metrics():
    scenario = FleetScenario(
        profile="contact_lens", num_devices=25, mac="slotted_aloha",
        duration_s=1.0, period_s=0.02, seed=77,
    )
    first = FleetSimulator(scenario).run()
    second = FleetSimulator(scenario).run()
    assert first.fingerprint() == second.fingerprint()
    assert first.aggregate() == second.aggregate()


def test_different_seeds_diverge():
    def run(seed):
        return FleetSimulator(
            FleetScenario(
                profile="contact_lens", num_devices=25, mac="aloha",
                duration_s=1.0, period_s=0.02, seed=seed,
            )
        ).run()

    assert run(1).fingerprint() != run(2).fingerprint()


def test_counters_are_consistent():
    metrics = FleetSimulator(
        FleetScenario(
            profile="card_to_card", num_devices=12, mac="csma",
            duration_s=1.0, seed=5,
        )
    ).run()
    agg = metrics.aggregate()
    assert agg.num_devices == 12
    assert agg.generated > 0
    # Everything generated is delivered, dropped, refused or still queued.
    still_queued = agg.generated - agg.queue_dropped - agg.delivered - agg.dropped
    assert still_queued >= 0
    assert agg.attempted >= agg.delivered
    assert 0.0 <= agg.delivery_ratio <= 1.0
    assert 0.0 <= agg.utilization <= 1.0
    for stats in metrics.devices.values():
        assert stats.delivered <= stats.generated
        assert len(stats.latencies_s) == stats.delivered
        assert all(lat >= 0.0 for lat in stats.latencies_s)


def test_slotted_aloha_beats_pure_aloha_at_high_load():
    def delivery(mac: str) -> float:
        return (
            FleetSimulator(
                FleetScenario(
                    profile="contact_lens", num_devices=60, mac=mac,
                    duration_s=2.0, period_s=0.02, seed=2016,
                )
            )
            .run()
            .aggregate()
            .delivery_ratio
        )

    pure = delivery("aloha")
    slotted = delivery("slotted_aloha")
    assert pure < 0.5  # the channel really is heavily loaded
    assert slotted > 1.5 * pure


def test_tdma_polling_is_collision_free_when_saturated():
    sim = FleetSimulator(
        FleetScenario(
            profile="contact_lens", num_devices=30, mac="tdma",
            duration_s=1.0, period_s=0.004, seed=9,
        )
    )
    metrics = sim.run()
    assert sim.medium.collisions == 0
    assert metrics.aggregate().collided == 0


def test_lone_device_delivers_nearly_everything():
    for mac in ("aloha", "slotted_aloha", "csma", "tdma"):
        agg = (
            FleetSimulator(
                FleetScenario(
                    profile="contact_lens", num_devices=1, mac=mac,
                    duration_s=1.0, period_s=0.02, seed=3,
                )
            )
            .run()
            .aggregate()
        )
        assert agg.delivery_ratio > 0.95, mac
        assert agg.collided == 0
