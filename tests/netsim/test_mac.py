"""MAC policies: backoff behaviour, carrier sense, slotting, polling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.events import EventScheduler
from repro.netsim.mac import (
    MAX_BACKOFF_EXPONENT,
    CsmaBackoff,
    Packet,
    PureAloha,
    SlottedAloha,
    TdmaPolling,
    make_mac,
)
from repro.netsim.medium import MediumOutcome, SharedMedium


class FakeSim:
    """Minimal simulator stand-in: records transmissions and outcomes."""

    def __init__(self, *, seed: int = 1, deliver: bool = True, air_time_s: float = 150e-6):
        self.scheduler = EventScheduler()
        self.medium = SharedMedium()
        self.rng = np.random.default_rng(seed)
        self.deliver = deliver
        self.air_time_s = air_time_s
        self.transmissions: list[tuple[float, Packet]] = []
        self.delivered: list[Packet] = []
        self.dropped: list[Packet] = []

    def transmit(self, node, packet, done):
        packet.attempts += 1
        self.transmissions.append((self.scheduler.now, packet))
        outcome = MediumOutcome(
            delivered=self.deliver,
            collided=False,
            sinr_db=30.0,
            packet_error_rate=0.0,
            rssi_dbm=-60.0,
        )
        self.scheduler.schedule(self.air_time_s, lambda: done(packet, outcome))

    def record_delivery(self, node, packet):
        self.delivered.append(packet)

    def record_drop(self, node, packet):
        self.dropped.append(packet)


def _packet(seq: int = 1) -> Packet:
    return Packet(device_id=0, sequence=seq, psdu_bytes=14, created_s=0.0)


def _bind(mac, sim) -> None:
    mac.bind(node=object(), sim=sim)


# ------------------------------------------------------------------- ALOHA
def test_pure_aloha_transmits_immediately():
    sim = FakeSim()
    mac = PureAloha(base_backoff_s=1e-3)
    _bind(mac, sim)
    mac.packet_arrived(_packet())
    sim.scheduler.run()
    assert len(sim.transmissions) == 1
    assert sim.transmissions[0][0] == pytest.approx(0.0)
    assert sim.delivered and not sim.dropped


def test_pure_aloha_backoff_window_doubles_with_attempts():
    sim = FakeSim()
    mac = PureAloha(base_backoff_s=1e-3)
    _bind(mac, sim)
    base = mac.base_backoff_s
    for attempts in (1, 2, 3, 7, 50):
        packet = _packet()
        packet.attempts = attempts
        window = base * 2.0 ** min(attempts - 1, MAX_BACKOFF_EXPONENT)
        draws = [mac.retry_delay_s(packet) for _ in range(200)]
        assert all(0.0 <= d < window for d in draws)
        # The window is actually used, not just bounded.
        assert max(draws) > window / 4.0


def test_pure_aloha_drops_after_max_attempts():
    sim = FakeSim(deliver=False)
    mac = PureAloha(base_backoff_s=1e-4, max_attempts=3)
    _bind(mac, sim)
    mac.packet_arrived(_packet())
    sim.scheduler.run()
    assert len(sim.transmissions) == 3
    assert len(sim.dropped) == 1 and not sim.delivered


def test_slotted_aloha_aligns_attempts_to_slot_boundaries():
    sim = FakeSim()
    slot = 200e-6
    mac = SlottedAloha(slot_s=slot)
    _bind(mac, sim)
    # Arrive mid-slot: the attempt must wait for the next boundary.
    sim.scheduler.schedule(70e-6, lambda: mac.packet_arrived(_packet()))
    sim.scheduler.run()
    start, _ = sim.transmissions[0]
    assert start == pytest.approx(slot)
    slots = start / slot
    assert slots == pytest.approx(round(slots))


def test_slotted_aloha_retry_lands_on_future_slot():
    sim = FakeSim(deliver=False)
    slot = 200e-6
    mac = SlottedAloha(slot_s=slot, max_attempts=4)
    _bind(mac, sim)
    mac.packet_arrived(_packet())
    sim.scheduler.run()
    assert len(sim.transmissions) == 4
    starts = [t for t, _ in sim.transmissions]
    for start in starts:
        assert start / slot == pytest.approx(round(start / slot))
    assert starts == sorted(starts)


# -------------------------------------------------------------------- CSMA
def test_csma_defers_while_medium_busy():
    sim = FakeSim()
    mac = CsmaBackoff(backoff_slot_s=50e-6, max_cca_attempts=50)
    _bind(mac, sim)
    blocker = sim.medium.begin(
        device_id=99, rssi_dbm=-50.0, duration_s=5e-3, psdu_bytes=14,
        rate_mbps=2.0, now=0.0,
    )
    mac.packet_arrived(_packet())
    sim.scheduler.run(until_s=2e-3)
    assert sim.transmissions == []  # kept sensing busy, never talked
    release = 5e-3
    sim.scheduler.schedule_at(
        release, lambda: sim.medium.end(blocker, now=release, rng=sim.rng)
    )
    sim.scheduler.run()
    assert len(sim.transmissions) == 1
    assert sim.transmissions[0][0] >= release


def test_csma_backoff_exponent_grows_and_resets():
    sim = FakeSim()
    mac = CsmaBackoff(min_be=3, max_be=6)
    _bind(mac, sim)
    assert mac._be == 3
    packet = _packet()
    packet.attempts = 1
    for expected in (4, 5, 6, 6):
        mac.retry_delay_s(packet)
        assert mac._be == expected
    mac._packet_finished()
    assert mac._be == 3


def test_csma_drops_on_persistent_channel_access_failure():
    sim = FakeSim()
    mac = CsmaBackoff(backoff_slot_s=50e-6, max_cca_attempts=4)
    _bind(mac, sim)
    sim.medium.begin(
        device_id=99, rssi_dbm=-50.0, duration_s=10.0, psdu_bytes=14,
        rate_mbps=2.0, now=0.0,
    )
    mac.packet_arrived(_packet())
    sim.scheduler.run(until_s=1.0)
    assert sim.transmissions == []
    assert len(sim.dropped) == 1


def test_csma_unreliable_cca_can_miss_activity():
    sim = FakeSim()
    mac = CsmaBackoff(cca_reliability=0.0, backoff_slot_s=50e-6)
    _bind(mac, sim)
    sim.medium.begin(
        device_id=99, rssi_dbm=-50.0, duration_s=10.0, psdu_bytes=14,
        rate_mbps=2.0, now=0.0,
    )
    mac.packet_arrived(_packet())
    sim.scheduler.run(until_s=0.1)
    assert len(sim.transmissions) == 1  # blind CCA → talks over the blocker


# -------------------------------------------------------------------- TDMA
def test_tdma_transmits_only_in_own_slot():
    slot = 200e-6
    for index in (0, 2, 4):
        sim = FakeSim()
        mac = TdmaPolling(slot_index=index, num_slots=5, slot_s=slot)
        _bind(mac, sim)
        mac.packet_arrived(_packet())
        mac.start()
        sim.scheduler.run(until_s=3 * 5 * slot)
        starts = [t for t, _ in sim.transmissions]
        assert starts  # the queue drains during owned slots
        for start in starts:
            assert (start % (5 * slot)) / slot == pytest.approx(index)


def test_tdma_lost_poll_skips_the_slot():
    slot = 200e-6
    sim = FakeSim()
    mac = TdmaPolling(slot_index=0, num_slots=2, slot_s=slot, poll_success_prob=0.0)
    _bind(mac, sim)
    mac.packet_arrived(_packet())
    mac.start()
    sim.scheduler.run(until_s=50 * slot)
    assert sim.transmissions == []  # without a decoded poll the tag stays quiet


def test_tdma_retries_in_next_superframe():
    slot = 200e-6
    sim = FakeSim(deliver=False)
    mac = TdmaPolling(slot_index=1, num_slots=3, slot_s=slot, max_attempts=2)
    _bind(mac, sim)
    mac.packet_arrived(_packet())
    mac.start()
    sim.scheduler.run(until_s=4 * 3 * slot)
    starts = [t for t, _ in sim.transmissions]
    assert len(starts) == 2
    assert starts[1] - starts[0] == pytest.approx(3 * slot)  # one superframe later
    assert len(sim.dropped) == 1


# ---------------------------------------------------------------- registry
def test_make_mac_registry():
    assert isinstance(make_mac("aloha"), PureAloha)
    assert isinstance(make_mac("slotted_aloha", slot_s=1e-3), SlottedAloha)
    assert isinstance(make_mac("csma"), CsmaBackoff)
    assert isinstance(make_mac("tdma", num_slots=4, slot_index=1), TdmaPolling)
    with pytest.raises(ConfigurationError):
        make_mac("token_ring")


def test_queue_limit_rejects_overflow():
    sim = FakeSim()
    mac = PureAloha(base_backoff_s=1e-3, queue_limit=2)
    _bind(mac, sim)
    assert mac.packet_arrived(_packet(1))
    assert mac.packet_arrived(_packet(2))
    assert not mac.packet_arrived(_packet(3))
