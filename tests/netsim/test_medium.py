"""Shared medium: collision/capture accounting and utilization."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.netsim.medium import SharedMedium


@pytest.fixture
def medium() -> SharedMedium:
    return SharedMedium()


def _begin(medium, *, device_id=0, rssi=-60.0, duration=150e-6, now=0.0):
    return medium.begin(
        device_id=device_id,
        rssi_dbm=rssi,
        duration_s=duration,
        psdu_bytes=14,
        rate_mbps=2.0,
        now=now,
    )


def test_clean_transmission_delivers(medium, rng):
    tx = _begin(medium, rssi=-60.0)
    assert medium.busy
    outcome = medium.end(tx, now=150e-6, rng=rng)
    assert not medium.busy
    assert outcome.delivered
    assert not outcome.collided
    # With no interference the SINR is the plain link SNR.
    assert outcome.sinr_db == pytest.approx(medium.noise.snr_db(-60.0), abs=1e-6)
    assert outcome.packet_error_rate < 1e-6


def test_sub_sensitivity_packet_never_delivers(medium, rng):
    tx = _begin(medium, rssi=-100.0)
    outcome = medium.end(tx, now=150e-6, rng=rng)
    assert not outcome.delivered


def test_equal_power_overlap_corrupts_both(medium, rng):
    a = _begin(medium, device_id=1, rssi=-60.0, now=0.0)
    b = _begin(medium, device_id=2, rssi=-60.0, now=50e-6)
    out_a = medium.end(a, now=150e-6, rng=rng)
    out_b = medium.end(b, now=200e-6, rng=rng)
    assert out_a.collided and out_b.collided
    # Equal powers → SINR ≈ 0 dB → the PER model saturates.
    assert out_a.sinr_db < 1.0
    assert out_a.packet_error_rate > 0.99
    assert not out_a.delivered and not out_b.delivered
    assert medium.collisions == 2


def test_strong_packet_captures_over_weak(medium, rng):
    strong = _begin(medium, device_id=1, rssi=-50.0, now=0.0)
    weak = _begin(medium, device_id=2, rssi=-85.0, now=50e-6)
    out_strong = medium.end(strong, now=150e-6, rng=rng)
    out_weak = medium.end(weak, now=200e-6, rng=rng)
    assert out_strong.collided and out_weak.collided
    assert out_strong.delivered  # 35 dB above the interferer: capture
    assert not out_weak.delivered


def test_peak_interference_covers_sequential_overlaps(medium, rng):
    # Two interferers that never overlap each other still both raise the
    # victim's ledger; the peak is taken over concurrent power, so the
    # victim sees one interferer's worth at its worst instant.
    victim = _begin(medium, device_id=1, rssi=-60.0, duration=500e-6, now=0.0)
    first = _begin(medium, device_id=2, rssi=-60.0, duration=100e-6, now=0.0)
    medium.end(first, now=100e-6, rng=rng)
    second = _begin(medium, device_id=3, rssi=-60.0, duration=100e-6, now=200e-6)
    medium.end(second, now=300e-6, rng=rng)
    assert victim.peak_interference_w == pytest.approx(first.signal_w)
    out = medium.end(victim, now=500e-6, rng=rng)
    assert out.collided and not out.delivered


def test_busy_time_tracks_union_of_intervals(medium, rng):
    a = _begin(medium, device_id=1, duration=100e-6, now=0.0)
    b = _begin(medium, device_id=2, duration=100e-6, now=50e-6)
    medium.end(a, now=100e-6, rng=rng)
    medium.end(b, now=150e-6, rng=rng)
    c = _begin(medium, device_id=3, duration=100e-6, now=300e-6)
    medium.end(c, now=400e-6, rng=rng)
    # Union: [0, 150µs] + [300µs, 400µs] = 250 µs; airtime sums to 300 µs.
    assert medium.busy_time_s == pytest.approx(250e-6)
    assert medium.airtime_s == pytest.approx(300e-6)
    assert medium.utilization(1e-3) == pytest.approx(0.25)


def test_finalize_accounts_in_flight_transmission(medium, rng):
    _begin(medium, device_id=1, duration=1.0, now=0.0)
    medium.finalize(0.25)
    assert medium.busy_time_s == pytest.approx(0.25)


def test_ending_unknown_transmission_raises(medium, rng):
    tx = _begin(medium)
    medium.end(tx, now=150e-6, rng=rng)
    with pytest.raises(ConfigurationError):
        medium.end(tx, now=200e-6, rng=rng)
