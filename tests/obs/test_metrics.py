"""Tests for the process-local metrics core (:mod:`repro.obs.metrics`)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import metrics
from repro.obs.metrics import (
    TELEMETRY_VERSION,
    Collector,
    active_collector,
    collect,
    count,
    format_span_tree,
    gauge,
    span,
    structure,
    validate_telemetry,
)


class TestDisabledHelpers:
    def test_no_active_collector_by_default(self):
        assert active_collector() is None

    def test_helpers_are_noops_when_disabled(self):
        count("some.counter", 5)
        gauge("some.gauge", 1.5)
        with span("some.span", attr=1):
            count("nested", 1)
        assert active_collector() is None

    def test_null_span_is_reentrant(self):
        outer = span("outer")
        inner = span("inner")
        assert outer is inner  # one shared allocation-free instance
        with outer:
            with inner:
                pass


class TestCollector:
    def test_counters_accumulate(self):
        with collect() as collector:
            count("a", 2)
            count("a")
            count("b", 10)
        assert collector.counters == {"a": 3, "b": 10}

    def test_gauges_last_write_wins(self):
        with collect() as collector:
            gauge("g", 1.0)
            gauge("g", 2.5)
        assert collector.gauges == {"g": 2.5}

    def test_spans_nest_and_time(self):
        with collect() as collector:
            with span("root", devices=3):
                with span("child"):
                    pass
                with span("child"):
                    pass
        assert len(collector.spans) == 1
        root = collector.spans[0]
        assert root.name == "root"
        assert root.attrs == {"devices": 3}
        assert [child.name for child in root.children] == ["child", "child"]
        assert root.duration_s >= 0.0

    def test_activations_nest_and_restore(self):
        outer = Collector()
        inner = Collector()
        with outer.activate():
            count("outer.only")
            with inner.activate():
                assert active_collector() is inner
                count("inner.only")
            assert active_collector() is outer
        assert active_collector() is None
        assert outer.counters == {"outer.only": 1}
        assert inner.counters == {"inner.only": 1}

    def test_exception_still_closes_span(self):
        with collect() as collector:
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
            # the stack unwound: a new span is a root, not a child
            with span("after"):
                pass
        assert [entry.name for entry in collector.spans] == ["failing", "after"]

    def test_rejects_bad_names_and_attrs(self):
        with collect():
            with pytest.raises(ConfigurationError):
                count("")
            with pytest.raises(ConfigurationError):
                gauge("", 1.0)
            with pytest.raises(ConfigurationError):
                with span("bad", payload=[1, 2]):
                    pass
            with pytest.raises(ConfigurationError):
                with span("bad", value=float("nan")):
                    pass


class TestDocument:
    def _document(self):
        with collect() as collector:
            count("z.counter", 2)
            count("a.counter", 1)
            gauge("g", 0.5)
            with span("root", mode="fast"):
                with span("leaf"):
                    pass
        return collector.to_dict()

    def test_to_dict_is_strict_json(self):
        document = self._document()
        assert document["telemetry_version"] == TELEMETRY_VERSION
        round_tripped = json.loads(json.dumps(document, allow_nan=False))
        assert round_tripped == document

    def test_counters_sorted_by_name(self):
        document = self._document()
        assert list(document["counters"]) == ["a.counter", "z.counter"]

    def test_validate_accepts_own_output(self):
        validate_telemetry(self._document())

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.pop("telemetry_version"),
            lambda d: d.update(telemetry_version=99),
            lambda d: d.update(counters=[1]),
            lambda d: d["counters"].update(bad=1.5),
            lambda d: d["counters"].update(bad=True),
            lambda d: d.update(spans={}),
            lambda d: d["spans"].append({"name": ""}),
            lambda d: d["spans"][0].pop("duration_s"),
            lambda d: d["spans"][0].update(children=None),
        ],
    )
    def test_validate_rejects_malformed(self, mutate):
        document = self._document()
        mutate(document)
        with pytest.raises(ConfigurationError):
            validate_telemetry(document)

    def test_structure_strips_durations_and_gauges(self):
        document = self._document()
        skeleton = structure(document)
        assert "gauges" not in skeleton
        assert skeleton["counters"] == document["counters"]
        root = skeleton["spans"][0]
        assert "duration_s" not in root
        assert root["attrs"] == {"mode": "fast"}
        assert root["children"][0]["name"] == "leaf"

    def test_structure_equal_across_repeat_runs(self):
        first, second = self._document(), self._document()
        assert first != second or first == second  # durations may differ
        assert structure(first) == structure(second)

    def test_format_span_tree_indents_and_shows_attrs(self):
        lines = format_span_tree(self._document())
        assert lines[0].startswith('root mode="fast"  [')
        assert lines[1].startswith("  leaf  [")
        assert all(line.endswith("ms]") for line in lines)


class TestHotPathCost:
    def test_disabled_span_returns_shared_null(self):
        assert span("anything") is metrics._NULL_SPAN

    def test_enabled_span_returns_context_manager(self):
        with collect():
            cm = span("timed")
            assert cm is not metrics._NULL_SPAN
            with cm:
                pass
