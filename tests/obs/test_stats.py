"""Tests for the telemetry analytics over a store (:mod:`repro.obs.stats`)."""

from __future__ import annotations

from repro.api.result import Result
from repro.api.store import ResultStore
from repro.obs.metrics import TELEMETRY_VERSION
from repro.obs.stats import counter_totals, span_count, stats_frame


def _telemetry(counters: dict[str, int], spans: list | None = None) -> dict:
    return {
        "telemetry_version": TELEMETRY_VERSION,
        "counters": counters,
        "gauges": {},
        "spans": spans if spans is not None else [],
    }


def _span(name: str, children: list | None = None) -> dict:
    return {"name": name, "attrs": {}, "duration_s": 0.0, "children": children or []}


def _result(experiment: str, runtime_s: float, telemetry: dict | None) -> Result:
    return Result(
        experiment=experiment,
        engine="scalar",
        seed=0,
        params={},
        runtime_s=runtime_s,
        payload=None,
        telemetry=telemetry,
    )


class TestSpanCount:
    def test_counts_whole_tree(self):
        document = _telemetry({}, spans=[_span("root", [_span("a"), _span("b", [_span("c")])])])
        assert span_count(document) == 4

    def test_empty_document(self):
        assert span_count(_telemetry({})) == 0


class TestCounterTotals:
    def test_sums_across_results_sorted(self):
        results = [
            _result("x", 1.0, _telemetry({"b": 2, "a": 1})),
            _result("y", 1.0, _telemetry({"b": 3})),
            _result("z", 1.0, None),  # unobserved runs are skipped
        ]
        assert counter_totals(results) == {"a": 1, "b": 5}
        assert list(counter_totals(results)) == ["a", "b"]

    def test_experiment_filter(self):
        results = [
            _result("x", 1.0, _telemetry({"a": 1})),
            _result("y", 1.0, _telemetry({"a": 10})),
        ]
        assert counter_totals(results, experiment="y") == {"a": 10}

    def test_accepts_a_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(_result("x", 1.0, _telemetry({"a": 4})))
        assert counter_totals(store) == {"a": 4}


class TestStatsFrame:
    def test_one_row_per_experiment_sorted(self):
        results = [
            _result("zeta", 1.0, _telemetry({})),
            _result("alpha", 2.0, _telemetry({})),
        ]
        frame = stats_frame(results)
        assert list(frame.column("experiment")) == ["alpha", "zeta"]

    def test_runtime_percentiles_and_observed(self):
        results = [
            _result("x", 1.0, _telemetry({})),
            _result("x", 3.0, None),
        ]
        row = stats_frame(results).rows()[0]
        assert row["runs"] == 2
        assert row["observed"] == 1
        assert row["runtime_mean_s"] == 2.0
        assert row["runtime_p50_s"] == 2.0

    def test_events_per_second_uses_observed_runtime(self):
        telemetry = _telemetry({"netsim.events.dispatched": 500})
        row = stats_frame([_result("x", 2.0, telemetry)]).rows()[0]
        assert row["events_per_s"] == 250.0

    def test_fast_path_hit_rate(self):
        telemetry = _telemetry(
            {"netsim.medium.resolutions": 10, "netsim.medium.fast_path_hits": 4}
        )
        row = stats_frame([_result("x", 1.0, telemetry)]).rows()[0]
        assert row["fast_path_hit_rate"] == 0.4

    def test_rates_are_zero_not_nan_without_denominator(self):
        row = stats_frame([_result("x", 0.0, None)]).rows()[0]
        assert row["events_per_s"] == 0.0
        assert row["fast_path_hit_rate"] == 0.0

    def test_span_totals(self):
        telemetry = _telemetry({}, spans=[_span("root", [_span("leaf")])])
        row = stats_frame([_result("x", 1.0, telemetry)]).rows()[0]
        assert row["spans"] == 2
