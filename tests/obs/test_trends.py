"""Tests for the trend observatory (:mod:`repro.obs.trends`)."""

from __future__ import annotations

import json

import pytest

from repro.api.registry import get_experiment
from repro.api.runner import Runner
from repro.api.store import ResultStore
from repro.exceptions import ConfigurationError
from repro.obs import trends
from repro.obs.trends import (
    PAPER_TARGETS,
    TREND_VERSION,
    append_entry,
    load_trend,
    parity_entry,
    parity_figure,
    runtime_entry,
    runtime_figure,
    save_trend,
    trend_figures,
    validate_trend,
)
from repro.plots.render import render_figure


def _runtime_document(*prs: int) -> dict:
    return {
        "trend_version": TREND_VERSION,
        "kind": "runtime",
        "entries": [{"pr": pr, "median_s": {"bench/a": 0.1 * pr, "bench/b": 0.2}} for pr in prs],
    }


def _parity_document(*prs: int) -> dict:
    return {
        "trend_version": TREND_VERSION,
        "kind": "parity",
        "entries": [
            {"pr": pr, "targets": {"fig10.range": {"paper": 90.0, "measured": 88.0 + pr}}}
            for pr in prs
        ],
    }


class TestValidation:
    def test_accepts_well_formed_documents(self):
        validate_trend(_runtime_document(1, 2))
        validate_trend(_parity_document(3))

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(trend_version=99),
            lambda d: d.update(kind="latency"),
            lambda d: d.update(entries={}),
            lambda d: d["entries"][0].pop("pr"),
            lambda d: d["entries"][0].update(median_s={}),
            lambda d: d["entries"][0]["median_s"].update(bad=True),
            lambda d: d["entries"].reverse(),  # unsorted PRs
            lambda d: d["entries"].append(dict(d["entries"][0])),  # duplicate PR
        ],
    )
    def test_rejects_malformed_runtime(self, mutate):
        document = _runtime_document(1, 2)
        mutate(document)
        with pytest.raises(ConfigurationError):
            validate_trend(document)

    def test_rejects_parity_value_missing_measured(self):
        document = _parity_document(1)
        document["entries"][0]["targets"]["fig10.range"] = {"paper": 90.0}
        with pytest.raises(ConfigurationError):
            validate_trend(document)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "runtime.json"
        document = _runtime_document(4, 5)
        save_trend(path, document)
        assert load_trend(path) == document

    def test_save_is_canonical_bytes(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        save_trend(first, _runtime_document(1))
        save_trend(second, _runtime_document(1))
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text().endswith("\n")

    def test_load_missing_or_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_trend(tmp_path / "absent.json")
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_trend(broken)


class TestAppendEntry:
    def test_creates_file_and_appends_sorted(self, tmp_path):
        path = tmp_path / "runtime.json"
        append_entry(path, kind="runtime", entry=_runtime_document(7)["entries"][0])
        document = append_entry(path, kind="runtime", entry=_runtime_document(5)["entries"][0])
        assert [entry["pr"] for entry in document["entries"]] == [5, 7]
        assert load_trend(path) == document

    def test_reappending_a_pr_replaces_its_entry(self, tmp_path):
        path = tmp_path / "runtime.json"
        append_entry(path, kind="runtime", entry={"pr": 6, "median_s": {"bench/a": 1.0}})
        document = append_entry(path, kind="runtime", entry={"pr": 6, "median_s": {"bench/a": 2.0}})
        assert len(document["entries"]) == 1
        assert document["entries"][0]["median_s"]["bench/a"] == 2.0

    def test_kind_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "runtime.json"
        save_trend(path, _runtime_document(1))
        with pytest.raises(ConfigurationError):
            append_entry(path, kind="parity", entry=_parity_document(2)["entries"][0])


class TestEntries:
    def test_runtime_entry_reads_benchmark_medians(self, tmp_path):
        payload = {
            "benchmarks": [
                {"fullname": "b/two", "stats": {"median": 2.0, "min": 1.9}},
                {"fullname": "b/one", "stats": {"median": 1.0, "min": 0.9}},
            ]
        }
        source = tmp_path / "baseline.json"
        source.write_text(json.dumps(payload))
        entry = runtime_entry(source, pr=9)
        assert entry == {"pr": 9, "median_s": {"b/one": 1.0, "b/two": 2.0}}

    def test_runtime_entry_rejects_empty(self, tmp_path):
        source = tmp_path / "empty.json"
        source.write_text(json.dumps({"benchmarks": []}))
        with pytest.raises(ConfigurationError):
            runtime_entry(source, pr=1)

    def test_parity_entry_requires_every_target(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ConfigurationError, match="fig10"):
            parity_entry(store, pr=1)

    def test_parity_entry_measures_paper_targets(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = Runner(seed=0)
        for target in PAPER_TARGETS:
            experiment = get_experiment(target.experiment)
            store.append(runner.run(target.experiment, params=dict(experiment.fast_params)))
        entry = parity_entry(store, pr=6)
        assert entry["pr"] == 6
        assert sorted(entry["targets"]) == sorted(
            f"{target.experiment}.{target.metric}" for target in PAPER_TARGETS
        )
        for value in entry["targets"].values():
            assert value["paper"] > 0
            assert isinstance(value["measured"], float)

        # the append-parity CLI entry point drives the same path end to end
        trend_path = tmp_path / "parity.json"
        code = trends._main(
            ["append-parity", "--store", str(store.root), "--pr", "6", "--trend", str(trend_path)]
        )
        assert code == 0
        assert load_trend(trend_path)["entries"][0] == entry


class TestFigures:
    def test_runtime_figure_series(self):
        figure = runtime_figure(_runtime_document(1, 2, 3))
        labels = [series.label for series in figure.series]
        assert labels == ["suite median", "suite p90"]
        assert list(figure.series[0].x) == [1.0, 2.0, 3.0]
        assert figure.yscale == "log"

    def test_parity_figure_ratio(self):
        figure = parity_figure(_parity_document(4))
        assert figure.series[0].label == "fig10.range"
        assert figure.series[0].y[0] == pytest.approx(92.0 / 90.0)

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            runtime_figure(_parity_document(1))
        with pytest.raises(ConfigurationError):
            parity_figure(_runtime_document(1))

    def test_trend_figures_reads_directory(self, tmp_path):
        assert trend_figures(tmp_path / "absent") == {}
        save_trend(tmp_path / "runtime.json", _runtime_document(1, 2))
        save_trend(tmp_path / "parity.json", _parity_document(1, 2))
        figures = trend_figures(tmp_path)
        assert list(figures) == ["trend_parity", "trend_runtime"]

    def test_figures_render_deterministically(self, tmp_path):
        save_trend(tmp_path / "runtime.json", _runtime_document(1, 2))
        save_trend(tmp_path / "parity.json", _parity_document(1, 2))
        for figure in trend_figures(tmp_path).values():
            assert render_figure(figure, format="svg") == render_figure(figure, format="svg")


class TestCommittedTrends:
    def test_committed_documents_validate(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent.parent
        for name in ("runtime", "parity"):
            document = load_trend(repo_root / trends.TRENDS_DIR / f"{name}.json")
            assert document["kind"] == name
            assert document["entries"], f"{name}.json must hold at least one PR entry"
