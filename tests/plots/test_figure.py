"""Tests for the declarative figure model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.plots import Figure, Series


def _line(label="a", n=5):
    return Series(label=label, x=np.arange(float(n)), y=np.arange(float(n)) ** 2)


class TestSeries:
    def test_coerces_to_float_arrays(self):
        series = Series(label="s", x=[1, 2, 3], y=[4, 5, 6])
        assert series.x.dtype == np.float64
        assert series.y.dtype == np.float64

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError, match="x values"):
            Series(label="s", x=[1.0, 2.0], y=[1.0])

    def test_empty_series_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            Series(label="s", x=[], y=[])

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError, match="numeric"):
            Series(label="s", x=["a"], y=[1.0])


class TestFigure:
    def test_line_figure_requires_x(self):
        with pytest.raises(ConfigurationError, match="needs x"):
            Figure(title="t", xlabel="x", ylabel="y", series=(Series(label="s", y=[1.0]),))

    def test_bar_figure_requires_categories(self):
        with pytest.raises(ConfigurationError, match="categories"):
            Figure(title="t", xlabel="x", ylabel="y", kind="bar", series=(Series(label="s", y=[1.0]),))

    def test_bar_series_must_match_categories(self):
        with pytest.raises(ConfigurationError, match="categories"):
            Figure(
                title="t",
                xlabel="x",
                ylabel="y",
                kind="bar",
                categories=("a", "b"),
                series=(Series(label="s", y=[1.0]),),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            Figure(title="t", xlabel="x", ylabel="y", kind="scatter3d", series=(_line(),))

    def test_unknown_yscale_rejected(self):
        with pytest.raises(ConfigurationError, match="yscale"):
            Figure(title="t", xlabel="x", ylabel="y", yscale="symlog", series=(_line(),))

    def test_no_series_rejected(self):
        with pytest.raises(ConfigurationError, match="no series"):
            Figure(title="t", xlabel="x", ylabel="y", series=())

    def test_valid_figure_builds(self):
        figure = Figure(title="t", xlabel="x", ylabel="y", series=(_line(), _line("b")))
        assert figure.kind == "line"
        assert len(figure.series) == 2
