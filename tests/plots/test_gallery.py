"""Tests for the FIGURES.md gallery and the `python -m repro plot` verb."""

from __future__ import annotations

import pytest

from repro.api import ResultStore, Runner, SweepSpec, iter_experiments
from repro.api.cli import main
from repro.plots import check_gallery, generate_gallery, write_gallery


@pytest.fixture(scope="module")
def fast_store(tmp_path_factory):
    """The whole registry at fast parameters, plus one replicated sweep."""
    store = ResultStore(tmp_path_factory.mktemp("fast-store"))
    runner = Runner()
    runner.run_all(fast=True, store=store)
    sweep = SweepSpec(
        experiment="fig17",
        grid={"phone_power_dbm": [6.0, 10.0]},
        params={"messages_per_point": 10, "step_inches": 8.0},
        engine="batch",
        seed=17,
        replicates=3,
    )
    runner.run_batch(sweep.expand(), store=store)
    return store


class TestGenerateGallery:
    def test_every_registered_experiment_gets_a_figure(self, fast_store):
        text, images = generate_gallery(fast_store)
        for experiment in iter_experiments():
            assert f"## {experiment.name}" in text
            assert f"figures/{experiment.name}.svg" in text
            assert f"{experiment.name}.svg" in images
            assert len(images[f"{experiment.name}.svg"]) > 500

    def test_double_generation_is_byte_identical(self, fast_store):
        first_text, first_images = generate_gallery(fast_store)
        second_text, second_images = generate_gallery(fast_store)
        assert first_text == second_text
        assert first_images == second_images

    def test_replicated_experiment_reports_ci_table(self, fast_store):
        text, _ = generate_gallery(fast_store)
        assert "Replicated metrics at the rendered grid point (3 seeds):" in text
        assert "95% CI half-width" in text

    def test_absent_experiment_listed_with_run_hint(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(Runner().run("table_power"))
        text, images = generate_gallery(store, trends_dir=tmp_path / "no-trends")
        assert list(images) == ["table_power.svg"]
        assert "Not in this store — run `python -m repro run fig06" in text

    def test_committed_trends_render_observatory_section(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(Runner().run("table_power"))
        text, images = generate_gallery(store)  # default trends_dir: benchmarks/trends
        assert "## Observatory — cross-PR trends" in text
        assert "trend_parity.svg" in images
        assert "trend_runtime.svg" in images

    def test_absent_trends_dir_omits_observatory_section(self, tmp_path):
        store = ResultStore(tmp_path)
        store.append(Runner().run("table_power"))
        text, images = generate_gallery(store, trends_dir=tmp_path / "no-trends")
        assert "Observatory" not in text

    def test_image_links_are_relative_to_the_document(self, fast_store):
        text, _ = generate_gallery(fast_store, output="docs/FIGURES.md", figures_dir="docs/img")
        assert "![table_power](img/table_power.svg)" in text


class TestWriteAndCheck:
    def test_write_then_check_passes(self, fast_store, tmp_path):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figures"
        write_gallery(fast_store, output=gallery, figures_dir=figures)
        up_to_date, problems = check_gallery(fast_store, output=gallery, figures_dir=figures)
        assert up_to_date and problems == []

    def test_check_flags_stale_document(self, fast_store, tmp_path):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figures"
        write_gallery(fast_store, output=gallery, figures_dir=figures)
        gallery.write_text("stale")
        up_to_date, problems = check_gallery(fast_store, output=gallery, figures_dir=figures)
        assert not up_to_date
        assert any("does not match" in problem for problem in problems)

    def test_check_flags_missing_and_tampered_images(self, fast_store, tmp_path):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figures"
        write_gallery(fast_store, output=gallery, figures_dir=figures)
        (figures / "fig06.svg").unlink()
        (figures / "fig11.svg").write_bytes(b"tampered")
        up_to_date, problems = check_gallery(fast_store, output=gallery, figures_dir=figures)
        assert not up_to_date
        assert any("missing" in problem for problem in problems)
        assert any("differs" in problem for problem in problems)

    def test_check_flags_orphaned_images(self, fast_store, tmp_path):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figures"
        write_gallery(fast_store, output=gallery, figures_dir=figures)
        (figures / "fig99.svg").write_bytes(b"stale figure of a removed experiment")
        up_to_date, problems = check_gallery(fast_store, output=gallery, figures_dir=figures)
        assert not up_to_date
        assert any("orphaned" in problem for problem in problems)

    def test_write_creates_nested_gallery_parent(self, fast_store, tmp_path):
        gallery = tmp_path / "docs" / "sub" / "FIGURES.md"
        figures = tmp_path / "figures"
        write_gallery(fast_store, output=gallery, figures_dir=figures)
        assert gallery.exists()


class TestPlotCli:
    def test_plot_writes_gallery_and_figures(self, fast_store, tmp_path, capsys):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figs"
        assert (
            main(
                [
                    "plot",
                    "--store",
                    str(fast_store.root),
                    "--output-dir",
                    str(figures),
                    "--gallery",
                    str(gallery),
                ]
            )
            == 0
        )
        assert gallery.exists()
        rendered = sorted(path.name for path in figures.glob("*.svg"))
        # every registered experiment plus the two committed observatory trends
        assert len(rendered) == len(iter_experiments()) + 2
        assert "trend_parity.svg" in rendered
        assert "trend_runtime.svg" in rendered
        assert "wrote" in capsys.readouterr().out

    def test_plot_twice_is_byte_identical(self, fast_store, tmp_path):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figs"
        args = [
            "plot",
            "--store",
            str(fast_store.root),
            "--output-dir",
            str(figures),
            "--gallery",
            str(gallery),
        ]
        assert main(args) == 0
        first = {path.name: path.read_bytes() for path in figures.glob("*.svg")}
        first_text = gallery.read_text()
        assert main(args) == 0
        second = {path.name: path.read_bytes() for path in figures.glob("*.svg")}
        assert first == second
        assert gallery.read_text() == first_text

    def test_check_manifest_round_trip(self, fast_store, tmp_path, capsys):
        gallery = tmp_path / "FIGURES.md"
        figures = tmp_path / "figs"
        base = [
            "plot",
            "--store",
            str(fast_store.root),
            "--output-dir",
            str(figures),
            "--gallery",
            str(gallery),
        ]
        assert main(base + ["--check-manifest"]) == 1  # nothing committed yet
        capsys.readouterr()
        assert main(base) == 0
        assert main(base + ["--check-manifest"]) == 0
        gallery.write_text("drifted")
        assert main(base + ["--check-manifest"]) == 1
        assert "regenerate with" in capsys.readouterr().err

    def test_custom_output_dir_keeps_gallery_beside_images(self, fast_store, tmp_path, monkeypatch, capsys):
        # The README's "render elsewhere" variant must not clobber a
        # committed FIGURES.md in the current directory.
        monkeypatch.chdir(tmp_path)
        committed = tmp_path / "FIGURES.md"
        committed.write_text("committed gallery")
        figures = tmp_path / "elsewhere"
        assert main(["plot", "--store", str(fast_store.root), "--output-dir", str(figures)]) == 0
        assert committed.read_text() == "committed gallery"
        assert (figures / "FIGURES.md").exists()

    def test_single_experiment_renders_without_gallery(self, fast_store, tmp_path, capsys):
        figures = tmp_path / "figs"
        assert (
            main(
                [
                    "plot",
                    "--store",
                    str(fast_store.root),
                    "--experiment",
                    "fig11",
                    "--output-dir",
                    str(figures),
                ]
            )
            == 0
        )
        assert [path.name for path in figures.glob("*.svg")] == ["fig11.svg"]
        assert not (tmp_path / "FIGURES.md").exists()

    def test_experiment_missing_from_store_fails(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "empty")
        assert (
            main(["plot", "--store", str(store.root), "--experiment", "fig11"]) == 1
        )
        assert "holds no results" in capsys.readouterr().err

    def test_unknown_experiment_fails_before_writing(self, fast_store, tmp_path, capsys):
        figures = tmp_path / "figs"
        code = main(
            [
                "plot",
                "--store",
                str(fast_store.root),
                "--experiment",
                "nope",
                "--output-dir",
                str(figures),
            ]
        )
        assert code == 1
        assert "unknown experiment" in capsys.readouterr().err
        assert not any(figures.glob("*.svg"))

    def test_check_manifest_rejects_experiment_filter(self, fast_store, capsys):
        code = main(
            ["plot", "--store", str(fast_store.root), "--experiment", "fig11", "--check-manifest"]
        )
        assert code == 2
        assert "drop --experiment" in capsys.readouterr().err
