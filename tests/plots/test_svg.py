"""Tests for the built-in deterministic SVG backend."""

from __future__ import annotations

import math
import xml.dom.minidom

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.plots import Figure, Series, render_figure, render_svg
from repro.plots.svg import MAX_POINTS_PER_SERIES


def _figure(**overrides):
    defaults = dict(
        title="A title",
        xlabel="x axis",
        ylabel="y axis",
        series=(
            Series(label="first", x=np.arange(10.0), y=np.arange(10.0) ** 2),
            Series(label="second", x=np.arange(10.0), y=np.arange(10.0)),
        ),
    )
    defaults.update(overrides)
    return Figure(**defaults)


def _parse(data: bytes) -> xml.dom.minidom.Document:
    return xml.dom.minidom.parseString(data.decode("utf-8"))


class TestDeterminism:
    def test_double_render_is_byte_identical(self):
        figure = _figure()
        assert render_svg(figure) == render_svg(figure)

    def test_output_is_valid_xml_with_series_polylines(self):
        document = _parse(render_svg(_figure()))
        assert len(document.getElementsByTagName("polyline")) == 2

    def test_coordinates_stay_inside_canvas(self):
        document = _parse(render_svg(_figure()))
        for polyline in document.getElementsByTagName("polyline"):
            for pair in polyline.getAttribute("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= 720 and 0 <= y <= 440


class TestContent:
    def test_labels_and_title_appear(self):
        text = render_svg(_figure()).decode("utf-8")
        for expected in ("A title", "x axis", "y axis", "first", "second"):
            assert expected in text

    def test_xml_special_characters_escaped(self):
        figure = _figure(title="a < b & c")
        text = render_svg(figure).decode("utf-8")
        assert "a &lt; b &amp; c" in text
        _parse(render_svg(figure))  # still valid XML

    def test_bar_figure_renders_rects_per_value(self):
        figure = Figure(
            title="bars",
            xlabel="x",
            ylabel="y",
            kind="bar",
            categories=("a", "b", "c"),
            series=(
                Series(label="s1", y=[1.0, 2.0, 3.0]),
                Series(label="s2", y=[3.0, 2.0, 1.0]),
            ),
        )
        document = _parse(render_svg(figure))
        rects = document.getElementsByTagName("rect")
        # 6 bars + frame + background + legend box.
        assert len(rects) == 9

    def test_cdf_renders_step_curve(self):
        values = np.array([0.1, 0.2, 0.4])
        fractions = np.array([1 / 3, 2 / 3, 1.0])
        figure = Figure(
            title="cdf",
            xlabel="v",
            ylabel="F",
            kind="cdf",
            series=(Series(label="", x=values, y=fractions),),
        )
        document = _parse(render_svg(figure))
        (polyline,) = document.getElementsByTagName("polyline")
        # Post-steps double the points (minus one).
        assert len(polyline.getAttribute("points").split()) == 2 * values.size - 1

    def test_log_scale_clips_non_positive_values(self):
        figure = _figure(
            yscale="log",
            series=(Series(label="ber", x=np.arange(4.0), y=np.array([0.0, 1e-3, 1e-2, 1e-1])),),
        )
        data = render_svg(figure)
        _parse(data)
        assert b"polyline" in data

    def test_nan_samples_split_the_polyline(self):
        y = np.array([1.0, 2.0, math.nan, 4.0, 5.0])
        figure = _figure(series=(Series(label="gap", x=np.arange(5.0), y=y),))
        document = _parse(render_svg(figure))
        assert len(document.getElementsByTagName("polyline")) == 2

    def test_long_series_are_decimated(self):
        n = MAX_POINTS_PER_SERIES * 4
        figure = _figure(series=(Series(label="long", x=np.arange(float(n)), y=np.zeros(n)),))
        document = _parse(render_svg(figure))
        (polyline,) = document.getElementsByTagName("polyline")
        assert len(polyline.getAttribute("points").split()) <= MAX_POINTS_PER_SERIES

    def test_log_scale_bars_stay_inside_canvas(self):
        figure = Figure(
            title="log bars",
            xlabel="x",
            ylabel="y",
            kind="bar",
            yscale="log",
            categories=("a", "b", "c"),
            series=(Series(label="s", y=[10.0, 100.0, 1000.0]),),
        )
        document = _parse(render_svg(figure))
        bars = [
            rect
            for rect in document.getElementsByTagName("rect")
            if rect.getAttribute("stroke") == "#333333"
        ]
        assert len(bars) == 3
        heights = []
        for rect in bars:
            y = float(rect.getAttribute("y"))
            height = float(rect.getAttribute("height"))
            assert 0 <= y <= 440 and 0 <= y + height <= 440
            heights.append(height)
        # Decade steps are equal on a log axis.
        assert heights[0] < heights[1] < heights[2]

    def test_constant_series_still_renders(self):
        figure = _figure(series=(Series(label="flat", x=np.arange(3.0), y=np.full(3, 7.0)),))
        _parse(render_svg(figure))

    def test_all_nan_series_rejected(self):
        figure = _figure(series=(Series(label="nan", x=np.arange(3.0), y=np.full(3, math.nan)),))
        with pytest.raises(ConfigurationError, match="no finite"):
            render_svg(figure)

    def test_log_scale_without_positive_values_rejected(self):
        figure = _figure(
            yscale="log", series=(Series(label="zero", x=np.arange(3.0), y=np.zeros(3)),)
        )
        with pytest.raises(ConfigurationError, match="no positive"):
            render_svg(figure)


class TestRenderDispatch:
    def test_svg_format_uses_builtin_backend(self):
        assert render_figure(_figure(), format="svg").startswith(b"<?xml")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigurationError, match="format"):
            render_figure(_figure(), format="pdf")

    def test_non_figure_rejected(self):
        with pytest.raises(ConfigurationError, match="Figure"):
            render_figure("not a figure")  # type: ignore[arg-type]

    def test_png_requires_matplotlib(self):
        from repro.plots import matplotlib_available

        if matplotlib_available():
            data = render_figure(_figure(), format="png")
            assert data.startswith(b"\x89PNG")
            assert data == render_figure(_figure(), format="png")
        else:
            with pytest.raises(ConfigurationError, match="matplotlib is not installed"):
                render_figure(_figure(), format="png")
