"""Tests for the CI benchmark-regression compare script."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "compare_benchmarks.py"


def _payload(entries: dict[str, tuple[float, float]]) -> dict:
    return {
        "benchmarks": [
            {"fullname": name, "stats": {"median": median, "min": minimum}}
            for name, (median, minimum) in entries.items()
        ]
    }


def _run(tmp_path: Path, baseline: dict, current: dict, *extra: str):
    baseline_path = tmp_path / "baseline.json"
    current_path = tmp_path / "current.json"
    baseline_path.write_text(json.dumps(baseline))
    current_path.write_text(json.dumps(current))
    return subprocess.run(
        [sys.executable, str(SCRIPT), str(baseline_path), str(current_path), *extra],
        capture_output=True,
        text=True,
    )


def test_identical_runs_pass(tmp_path):
    payload = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8)})
    result = _run(tmp_path, payload, payload)
    assert result.returncode == 0
    assert "OK" in result.stdout


def test_uniform_machine_slowdown_is_normalised_away(tmp_path):
    baseline = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (3.0, 2.7)})
    current = _payload({"a": (2.0, 1.8), "b": (4.0, 3.6), "c": (6.0, 5.4)})
    result = _run(tmp_path, baseline, current)
    assert result.returncode == 0


def test_single_benchmark_regression_fails(tmp_path):
    baseline = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (3.0, 2.7)})
    current = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (9.0, 8.1)})
    result = _run(tmp_path, baseline, current)
    assert result.returncode == 1
    assert "REGRESSION" in result.stdout


def test_noisy_median_with_stable_min_passes(tmp_path):
    baseline = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (3.0, 2.7)})
    current = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (9.0, 2.7)})
    result = _run(tmp_path, baseline, current)
    assert result.returncode == 0
    assert "noisy median" in result.stdout


def test_absolute_mode_flags_uniform_slowdown(tmp_path):
    baseline = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8)})
    current = _payload({"a": (2.0, 1.8), "b": (4.0, 3.6)})
    result = _run(tmp_path, baseline, current, "--absolute")
    assert result.returncode == 1


def test_large_speedups_do_not_flag_unchanged_benchmarks(tmp_path):
    # Two benchmarks sped up 80x; the others are untouched.  A geometric-mean
    # centre would report the untouched ones as relative regressions.
    entries = {f"b{i}": (1.0, 0.9) for i in range(8)}
    baseline = _payload(entries)
    faster = dict(entries)
    faster["b0"] = (1.0 / 80.0, 0.9 / 80.0)
    faster["b1"] = (1.0 / 80.0, 0.9 / 80.0)
    result = _run(tmp_path, baseline, _payload(faster))
    assert result.returncode == 0
    assert "REGRESSION" not in result.stdout


def test_disjoint_benchmark_sets_error(tmp_path):
    result = _run(tmp_path, _payload({"a": (1.0, 0.9)}), _payload({"b": (1.0, 0.9)}))
    assert result.returncode == 1
    assert "no common benchmarks" in result.stderr
    assert "regressed" not in result.stdout


def test_json_out_writes_machine_readable_report(tmp_path):
    baseline = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (3.0, 2.7)})
    current = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8), "c": (9.0, 8.1)})
    out = tmp_path / "compare.json"
    result = _run(tmp_path, baseline, current, "--json", str(out))
    assert result.returncode == 1
    document = json.loads(out.read_text())
    assert document["regressions"] == 1
    assert document["benchmarks"]["c"]["regressed"] is True
    assert document["benchmarks"]["a"]["regressed"] is False
    assert document["benchmarks"]["c"]["baseline_median_s"] == 3.0
    assert "normalization" in document


def test_per_backend_key_gated_exactly_when_baseline_has_it(tmp_path):
    baseline = _payload({"v[numpy]": (1.0, 0.9), "v[strict]": (1.0, 0.9), "w": (2.0, 1.8)})
    current = _payload({"v[numpy]": (1.0, 0.9), "v[strict]": (9.0, 8.1), "w": (2.0, 1.8)})
    result = _run(tmp_path, baseline, current)
    assert result.returncode == 1
    assert "v[strict]" in result.stdout and "REGRESSION" in result.stdout


def test_per_backend_key_falls_back_to_bare_family(tmp_path):
    # A baseline recorded before the benchmark grew its backend dimension
    # still gates each backend against the shared family entry.
    baseline = _payload({"v": (1.0, 0.9), "w": (2.0, 1.8), "x": (3.0, 2.7)})
    current = _payload({"v[numpy]": (1.0, 0.9), "v[strict]": (9.0, 8.1), "w": (2.0, 1.8), "x": (3.0, 2.7)})
    result = _run(tmp_path, baseline, current)
    assert result.returncode == 1
    assert "note: new benchmark" not in result.stdout
    out = tmp_path / "compare.json"
    result = _run(tmp_path, baseline, current, "--json", str(out))
    document = json.loads(out.read_text())
    assert document["benchmarks"]["v[numpy]"]["baseline_key"] == "v"
    assert document["benchmarks"]["v[strict]"]["regressed"] is True


def test_append_trend_requires_pr(tmp_path):
    payload = _payload({"a": (1.0, 0.9)})
    result = _run(tmp_path, payload, payload, "--append-trend", str(tmp_path / "runtime.json"))
    assert result.returncode == 2
    assert "--append-trend requires --pr" in result.stderr


def test_append_trend_records_current_medians(tmp_path):
    payload = _payload({"a": (1.0, 0.9), "b": (2.0, 1.8)})
    trend = tmp_path / "runtime.json"
    result = _run(tmp_path, payload, payload, "--append-trend", str(trend), "--pr", "7")
    assert result.returncode == 0
    document = json.loads(trend.read_text())
    assert document["kind"] == "runtime"
    assert [entry["pr"] for entry in document["entries"]] == [7]
    assert document["entries"][0]["median_s"] == {"a": 1.0, "b": 2.0}


def test_slim_with_append_trend(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "machine_info": {"cpu": "test"},
                "datetime": "2026-01-01",
                "benchmarks": [
                    {
                        "fullname": "a",
                        "stats": {"median": 1.0, "min": 0.9, "rounds": 5, "data": [1.0] * 999},
                    }
                ],
            }
        )
    )
    trend = tmp_path / "runtime.json"
    result = subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--slim",
            str(baseline_path),
            "--append-trend",
            str(trend),
            "--pr",
            "6",
        ],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
    slimmed = json.loads(baseline_path.read_text())
    assert "data" not in slimmed["benchmarks"][0]["stats"]
    document = json.loads(trend.read_text())
    assert document["entries"][0]["median_s"] == {"a": 1.0}
