"""Tests for package metadata, the exception hierarchy and public imports."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro.exceptions import (
    ConfigurationError,
    CrcError,
    DecodeError,
    LinkBudgetError,
    PacketFormatError,
    ReproError,
    SynchronizationError,
)


class TestMetadata:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            PacketFormatError,
            DecodeError,
            SynchronizationError,
            CrcError,
            LinkBudgetError,
        ):
            assert issubclass(exc, ReproError)

    def test_decode_specialisations(self):
        assert issubclass(SynchronizationError, DecodeError)
        assert issubclass(CrcError, DecodeError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise CrcError("boom")


class TestPublicImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils",
            "repro.ble",
            "repro.wifi",
            "repro.wifi.dsss",
            "repro.wifi.ofdm",
            "repro.zigbee",
            "repro.backscatter",
            "repro.channel",
            "repro.core",
            "repro.apps",
            "repro.experiments",
        ],
    )
    def test_subpackages_import_and_export(self, module):
        imported = importlib.import_module(module)
        assert hasattr(imported, "__all__")
        for name in imported.__all__:
            assert hasattr(imported, name), f"{module}.{name} missing"
