"""Unit and property tests for bit manipulation helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    as_bit_array,
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_bits,
    unpack_bits,
    xor_bits,
)


class TestBytesToBits:
    def test_single_byte_lsb_first(self):
        assert bytes_to_bits(b"\x01").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_single_byte_msb_first(self):
        assert bytes_to_bits(b"\x01", msb_first=True).tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_empty(self):
        assert bytes_to_bits(b"").size == 0

    def test_known_pattern(self):
        # 0xAA = 10101010: LSB first starts with 0.
        assert bytes_to_bits(b"\xaa").tolist() == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_length(self):
        assert bytes_to_bits(b"abc").size == 24


class TestBitsToBytes:
    def test_roundtrip_simple(self):
        assert bits_to_bytes(bytes_to_bits(b"\xde\xad\xbe\xef")) == b"\xde\xad\xbe\xef"

    def test_non_multiple_of_eight_raises(self):
        with pytest.raises(ValueError):
            bits_to_bytes([1, 0, 1])

    def test_msb_roundtrip(self):
        data = b"\x12\x34"
        assert bits_to_bytes(bytes_to_bits(data, msb_first=True), msb_first=True) == data


class TestIntBits:
    def test_int_to_bits_lsb(self):
        assert int_to_bits(5, 4).tolist() == [1, 0, 1, 0]

    def test_int_to_bits_msb(self):
        assert int_to_bits(5, 4, msb_first=True).tolist() == [0, 1, 0, 1]

    def test_value_too_large(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_bits_to_int_roundtrip(self):
        assert bits_to_int(int_to_bits(1234, 16)) == 1234

    def test_zero_width(self):
        assert int_to_bits(0, 0).size == 0


class TestPackUnpack:
    def test_pack(self):
        packed = pack_bits([1, 0], [1, 1, 1])
        assert packed.tolist() == [1, 0, 1, 1, 1]

    def test_pack_empty(self):
        assert pack_bits().size == 0

    def test_unpack(self):
        groups = unpack_bits([1, 0, 1, 1, 1, 0], 2, 3)
        assert groups[0].tolist() == [1, 0]
        assert groups[1].tolist() == [1, 1, 1]
        assert groups[2].tolist() == [0]

    def test_unpack_too_long_raises(self):
        with pytest.raises(ValueError):
            unpack_bits([1, 0], 3)


class TestXorHamming:
    def test_xor(self):
        assert xor_bits([1, 0, 1], [1, 1, 0]).tolist() == [0, 1, 1]

    def test_xor_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bits([1, 0], [1])

    def test_hamming(self):
        assert hamming_distance([1, 0, 1, 1], [1, 1, 1, 0]) == 2

    def test_hamming_identical(self):
        assert hamming_distance([0, 1], [0, 1]) == 0


class TestAsBitArray:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            as_bit_array([0, 1, 2])

    def test_flattens(self):
        assert as_bit_array(np.array([[1, 0], [0, 1]])).tolist() == [1, 0, 0, 1]


@given(st.binary(min_size=0, max_size=64))
def test_property_bytes_bits_roundtrip(data):
    assert bits_to_bytes(bytes_to_bits(data)) == data


@given(st.binary(min_size=0, max_size=64))
def test_property_bytes_bits_roundtrip_msb(data):
    assert bits_to_bytes(bytes_to_bits(data, msb_first=True), msb_first=True) == data


@given(st.integers(min_value=0, max_value=2**32 - 1), st.booleans())
def test_property_int_bits_roundtrip(value, msb):
    assert bits_to_int(int_to_bits(value, 32, msb_first=msb), msb_first=msb) == value


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=128))
def test_property_xor_involution(bits):
    other = np.roll(np.asarray(bits, dtype=np.uint8), 1)
    assert xor_bits(xor_bits(bits, other), other).tolist() == list(bits)
