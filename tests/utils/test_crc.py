"""Tests for the generic CRC engine and the standard CRC instances."""

from __future__ import annotations

import binascii

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import bytes_to_bits, int_to_bits
from repro.utils.crc import CrcEngine, crc16_ccitt, crc24_ble, crc32_ieee


class TestCrc32Ieee:
    def test_matches_zlib(self):
        data = b"interscatter"
        assert crc32_ieee.compute(bytes_to_bits(data)) == binascii.crc32(data)

    def test_empty(self):
        assert crc32_ieee.compute(np.zeros(0, dtype=np.uint8)) == binascii.crc32(b"")

    def test_compute_bytes_helper(self):
        data = b"\x00\x01\x02\x03"
        assert crc32_ieee.compute_bytes(data) == binascii.crc32(data)

    @given(st.binary(min_size=0, max_size=64))
    def test_property_matches_zlib(self, data):
        assert crc32_ieee.compute(bytes_to_bits(data)) == binascii.crc32(data)


class TestCrc24Ble:
    def test_deterministic(self):
        bits = bytes_to_bits(b"\x02\x0c" + b"\xc0\xff\xee\xc0\xff\xee" + b"hello!")
        first = crc24_ble.compute(bits)
        second = crc24_ble.compute(bits)
        assert first == second
        assert 0 <= first < 2**24

    def test_differs_on_bit_flip(self):
        bits = bytes_to_bits(b"\x02\x0chello-world-data")
        flipped = bits.copy()
        flipped[10] ^= 1
        assert crc24_ble.compute(bits) != crc24_ble.compute(flipped)

    def test_check_helper(self):
        bits = bytes_to_bits(b"payload")
        crc = crc24_ble.compute(bits)
        assert crc24_ble.check(bits, crc)
        assert not crc24_ble.check(bits, crc ^ 1)


class TestCrc16:
    def test_range(self):
        value = crc16_ccitt.compute(bytes_to_bits(b"802.15.4 frame"))
        assert 0 <= value < 2**16

    def test_differs_between_inputs(self):
        a = crc16_ccitt.compute(bytes_to_bits(b"frame-a"))
        b = crc16_ccitt.compute(bytes_to_bits(b"frame-b"))
        assert a != b


class TestCrcEngine:
    def test_append_extends_length(self):
        engine = CrcEngine(width=8, polynomial=0x07, init=0x00, reflect=False)
        bits = bytes_to_bits(b"ab")
        appended = engine.append(bits)
        assert appended.size == bits.size + 8

    def test_non_reflected_known_value(self):
        # CRC-8 (poly 0x07, init 0) of 0x00 processed MSB-first is 0x00.
        engine = CrcEngine(width=8, polynomial=0x07, init=0x00, reflect=False)
        assert engine.compute(int_to_bits(0, 8, msb_first=True)) == 0

    @given(st.binary(min_size=1, max_size=32))
    def test_property_single_bit_flip_detected(self, data):
        bits = bytes_to_bits(data)
        original = crc32_ieee.compute(bits)
        flipped = bits.copy()
        flipped[len(flipped) // 2] ^= 1
        assert crc32_ieee.compute(flipped) != original
