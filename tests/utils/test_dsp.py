"""Tests for DSP helpers: power conversions, shifting, AWGN."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.dsp import (
    add_awgn,
    awgn_noise,
    db_to_linear,
    dbm_to_watts,
    frequency_shift,
    linear_to_db,
    normalize_power,
    rms,
    signal_power,
    signal_power_dbm,
    watts_to_dbm,
)


class TestConversions:
    def test_db_roundtrip(self):
        assert db_to_linear(linear_to_db(3.7)) == pytest.approx(3.7, rel=1e-9)

    def test_dbm_watts(self):
        assert dbm_to_watts(0.0) == pytest.approx(1e-3)
        assert dbm_to_watts(30.0) == pytest.approx(1.0)
        assert watts_to_dbm(1e-3) == pytest.approx(0.0)

    def test_floor_prevents_log_of_zero(self):
        assert np.isfinite(linear_to_db(0.0))
        assert np.isfinite(watts_to_dbm(0.0))

    @given(st.floats(min_value=-100, max_value=100))
    def test_property_dbm_roundtrip(self, dbm):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm, abs=1e-6)


class TestPower:
    def test_signal_power_of_unit_tone(self):
        tone = np.exp(1j * np.linspace(0, 20 * np.pi, 1000))
        assert signal_power(tone) == pytest.approx(1.0, rel=1e-9)

    def test_rms_of_constant(self):
        assert rms(np.full(10, 2.0)) == pytest.approx(2.0)

    def test_empty_signal(self):
        assert signal_power(np.zeros(0)) == 0.0
        assert rms(np.zeros(0)) == 0.0

    def test_normalize_power(self):
        signal = np.random.default_rng(0).normal(size=1000) * 5.0
        normalized = normalize_power(signal, 2.0)
        assert signal_power(normalized) == pytest.approx(2.0, rel=1e-9)

    def test_normalize_zero_signal_is_noop(self):
        zeros = np.zeros(8)
        assert np.array_equal(normalize_power(zeros), zeros)

    def test_signal_power_dbm_unit_amplitude(self):
        tone = np.ones(100, dtype=complex)
        assert signal_power_dbm(tone) == pytest.approx(30.0)


class TestFrequencyShift:
    def test_shift_moves_spectral_peak(self):
        fs = 1e6
        n = 4096
        tone = np.exp(2j * np.pi * 50e3 * np.arange(n) / fs)
        shifted = frequency_shift(tone, 100e3, fs)
        spectrum = np.abs(np.fft.fft(shifted))
        freqs = np.fft.fftfreq(n, 1 / fs)
        assert abs(freqs[np.argmax(spectrum)] - 150e3) < 1e3

    def test_zero_sample_rate_raises(self):
        with pytest.raises(ValueError):
            frequency_shift(np.ones(4), 1.0, 0.0)


class TestAwgn:
    def test_noise_power(self, rng):
        noise = awgn_noise(200_000, 0.25, rng=rng)
        assert signal_power(noise) == pytest.approx(0.25, rel=0.05)

    def test_real_noise(self, rng):
        noise = awgn_noise(10_000, 1.0, rng=rng, complex_valued=False)
        assert not np.iscomplexobj(noise)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            awgn_noise(-1, 1.0)

    def test_add_awgn_snr(self, rng):
        signal = np.exp(2j * np.pi * 0.01 * np.arange(100_000))
        noisy = add_awgn(signal, 10.0, rng=rng)
        noise = noisy - signal
        snr = signal_power(signal) / signal_power(noise)
        assert 10 * np.log10(snr) == pytest.approx(10.0, abs=0.5)
