"""Tests for the LFSR implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.lfsr import FibonacciLfsr, GaloisLfsr


class TestFibonacciLfsr:
    def test_maximal_length_period(self):
        # x^7 + x^4 + 1 is primitive: period 127 for any non-zero state.
        lfsr = FibonacciLfsr(taps=(0, 4), state=[1, 0, 0, 0, 0, 0, 0])
        sequence = lfsr.sequence(254)
        assert np.array_equal(sequence[:127], sequence[127:])
        # Not all zeros / not trivially periodic shorter than 127.
        assert sequence[:127].sum() > 0
        for period in (1, 7, 21, 63):
            assert not np.array_equal(sequence[:period], sequence[period : 2 * period])

    def test_whiten_is_involution(self):
        data = np.random.default_rng(0).integers(0, 2, 100).astype(np.uint8)
        forward = FibonacciLfsr(taps=(0, 4), state=[1, 1, 0, 1, 0, 0, 1]).whiten(data)
        recovered = FibonacciLfsr(taps=(0, 4), state=[1, 1, 0, 1, 0, 0, 1]).whiten(forward)
        assert np.array_equal(recovered, data)

    def test_empty_state_raises(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(taps=(0,), state=[])

    def test_bad_tap_raises(self):
        with pytest.raises(ValueError):
            FibonacciLfsr(taps=(9,), state=[1, 0, 0])

    def test_negative_length_raises(self):
        lfsr = FibonacciLfsr(taps=(0, 4), state=[1] * 7)
        with pytest.raises(ValueError):
            lfsr.sequence(-1)

    def test_state_property_reflects_progress(self):
        lfsr = FibonacciLfsr(taps=(0, 4), state=[1, 0, 1, 0, 1, 0, 1])
        before = lfsr.state
        lfsr.step()
        assert lfsr.state != before or len(before) == 1


class TestGaloisLfsr:
    def test_zero_state_rejected(self):
        with pytest.raises(ValueError):
            GaloisLfsr(width=7, polynomial=0x48, state=0)

    def test_period_127(self):
        lfsr = GaloisLfsr(width=7, polynomial=0x48, state=0x01)
        sequence = lfsr.sequence(254)
        assert np.array_equal(sequence[:127], sequence[127:])

    @given(st.integers(min_value=1, max_value=127))
    def test_property_sequence_nonzero(self, state):
        lfsr = GaloisLfsr(width=7, polynomial=0x48, state=state)
        assert lfsr.sequence(127).sum() > 0
