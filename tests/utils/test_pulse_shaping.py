"""Tests for pulse-shaping filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.pulse_shaping import (
    gaussian_filter_taps,
    half_sine_pulse,
    raised_cosine_taps,
    rect_pulse,
)


class TestGaussianFilter:
    def test_unit_sum(self):
        taps = gaussian_filter_taps(0.5, 8)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_symmetric(self):
        taps = gaussian_filter_taps(0.5, 8)
        assert np.allclose(taps, taps[::-1])

    def test_narrower_bt_means_wider_pulse(self):
        wide = gaussian_filter_taps(0.3, 8, span_symbols=5)
        narrow = gaussian_filter_taps(1.0, 8, span_symbols=5)
        # Lower BT spreads energy further from the centre tap.
        assert wide.max() < narrow.max()

    def test_invalid_bt(self):
        with pytest.raises(ValueError):
            gaussian_filter_taps(0.0, 8)

    def test_invalid_sps(self):
        with pytest.raises(ValueError):
            gaussian_filter_taps(0.5, 0)


class TestRaisedCosine:
    def test_unit_sum(self):
        taps = raised_cosine_taps(0.35, 8)
        assert np.sum(taps) == pytest.approx(1.0)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            raised_cosine_taps(1.5, 8)

    def test_zero_beta_is_sinc(self):
        taps = raised_cosine_taps(0.0, 4, span_symbols=4)
        assert np.isfinite(taps).all()


class TestHalfSine:
    def test_starts_at_zero_peaks_in_middle(self):
        pulse = half_sine_pulse(8)
        assert pulse[0] == pytest.approx(0.0)
        assert pulse.max() == pytest.approx(1.0, abs=0.05)
        assert np.argmax(pulse) == pytest.approx(len(pulse) // 2, abs=1)

    def test_length(self):
        assert half_sine_pulse(5).size == 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            half_sine_pulse(0)


class TestRect:
    def test_all_ones(self):
        assert np.array_equal(rect_pulse(4), np.ones(4))

    def test_invalid(self):
        with pytest.raises(ValueError):
            rect_pulse(0)
