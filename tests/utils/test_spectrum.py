"""Tests for spectrum estimation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.spectrum import (
    band_power_db,
    occupied_bandwidth,
    power_spectral_density,
    spectral_peak,
    spectrum_asymmetry_db,
)


@pytest.fixture
def tone_spectrum():
    fs = 10e6
    n = 50_000
    tone = np.exp(2j * np.pi * 1e6 * np.arange(n) / fs)
    return power_spectral_density(tone, fs)


class TestPowerSpectralDensity:
    def test_peak_at_tone_frequency(self, tone_spectrum):
        peak_freq, _ = spectral_peak(tone_spectrum)
        assert abs(peak_freq - 1e6) < 20e3

    def test_frequencies_sorted(self, tone_spectrum):
        assert np.all(np.diff(tone_spectrum.frequencies_hz) > 0)

    def test_empty_waveform_raises(self):
        with pytest.raises(ValueError):
            power_spectral_density(np.zeros(0), 1e6)

    def test_psd_db_shape(self, tone_spectrum):
        assert tone_spectrum.psd_db.shape == tone_spectrum.psd.shape


class TestOccupiedBandwidth:
    def test_tone_is_narrow(self, tone_spectrum):
        assert occupied_bandwidth(tone_spectrum) < 100e3

    def test_noise_is_wide(self, rng):
        fs = 10e6
        noise = rng.standard_normal(50_000) + 1j * rng.standard_normal(50_000)
        spectrum = power_spectral_density(noise, fs)
        assert occupied_bandwidth(spectrum) > 5e6

    def test_invalid_fraction(self, tone_spectrum):
        with pytest.raises(ValueError):
            occupied_bandwidth(tone_spectrum, fraction=0.0)


class TestAsymmetry:
    def test_single_tone_is_asymmetric(self, tone_spectrum):
        asym = spectrum_asymmetry_db(tone_spectrum, 0.0, 1e6, 100e3)
        assert asym > 20.0

    def test_symmetric_signal_is_balanced(self, rng):
        fs = 10e6
        n = 50_000
        t = np.arange(n) / fs
        # A real cosine has equal power at +f and -f.
        signal = np.cos(2 * np.pi * 1e6 * t).astype(complex)
        spectrum = power_spectral_density(signal, fs)
        assert abs(spectrum_asymmetry_db(spectrum, 0.0, 1e6, 100e3)) < 1.0

    def test_band_power_db_monotonic_with_band(self, tone_spectrum):
        narrow = band_power_db(tone_spectrum, 0.9e6, 1.1e6)
        wide = band_power_db(tone_spectrum, 0.5e6, 1.5e6)
        assert wide >= narrow
