"""Tests for the 802.11b spreading and modulation primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.wifi.dsss.barker import BARKER_LENGTH, BARKER_SEQUENCE, barker_despread, barker_spread
from repro.wifi.dsss.cck import (
    CCK_CHIPS_PER_SYMBOL,
    cck_codeword,
    cck_codeword_set,
    cck_decode_symbol,
)
from repro.wifi.dsss.dpsk import DpskDemodulator, DpskModulator


class TestBarker:
    def test_sequence_properties(self):
        assert BARKER_SEQUENCE.size == BARKER_LENGTH == 11
        assert set(BARKER_SEQUENCE.tolist()) == {1.0, -1.0}

    def test_autocorrelation_peak(self):
        # Barker codes have off-peak aperiodic autocorrelation magnitude <= 1.
        full = np.correlate(BARKER_SEQUENCE, BARKER_SEQUENCE, mode="full")
        peak = full[BARKER_LENGTH - 1]
        assert peak == pytest.approx(11.0)
        off_peak = np.delete(full, BARKER_LENGTH - 1)
        assert np.max(np.abs(off_peak)) <= 1.0 + 1e-9

    def test_spread_despread_roundtrip(self, rng):
        symbols = np.exp(1j * rng.uniform(0, 2 * np.pi, 50))
        recovered = barker_despread(barker_spread(symbols))
        assert np.allclose(recovered, symbols)

    def test_spread_length(self):
        assert barker_spread(np.ones(3, dtype=complex)).size == 33

    def test_despread_bad_length(self):
        with pytest.raises(ValueError):
            barker_despread(np.ones(10, dtype=complex))

    def test_despread_rejects_noise_gain(self, rng):
        # Despreading provides an 11x processing gain against white noise.
        symbols = np.ones(200, dtype=complex)
        chips = barker_spread(symbols)
        noise = rng.standard_normal(chips.size) + 1j * rng.standard_normal(chips.size)
        noisy = chips + noise
        recovered = barker_despread(noisy)
        error_power = np.mean(np.abs(recovered - symbols) ** 2)
        assert error_power < np.mean(np.abs(noise) ** 2) / 5.0


class TestDpsk:
    @pytest.mark.parametrize("bits_per_symbol", [1, 2])
    def test_roundtrip(self, bits_per_symbol, rng):
        bits = rng.integers(0, 2, 120).astype(np.uint8)
        modulator = DpskModulator(bits_per_symbol)
        demodulator = DpskDemodulator(bits_per_symbol)
        assert np.array_equal(demodulator.demodulate(modulator.modulate(bits)), bits)

    def test_constant_phase_rotation_is_transparent(self, rng):
        # The §2.3.2 argument: DQPSK ignores a constant constellation rotation.
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        symbols = DpskModulator(2).modulate(bits)
        rotated = symbols * np.exp(1j * np.pi / 4.0)
        assert np.array_equal(DpskDemodulator(2).demodulate(rotated), bits)

    def test_unit_magnitude(self, rng):
        bits = rng.integers(0, 2, 32).astype(np.uint8)
        assert np.allclose(np.abs(DpskModulator(2).modulate(bits)), 1.0)

    def test_invalid_bits_per_symbol(self):
        with pytest.raises(ConfigurationError):
            DpskModulator(3)

    def test_odd_bit_count_for_dqpsk(self):
        with pytest.raises(ValueError):
            DpskModulator(2).modulate(np.ones(5, dtype=np.uint8))

    def test_empty(self):
        assert DpskDemodulator(1).demodulate(np.zeros(0, dtype=complex)).size == 0


class TestCck:
    def test_codeword_length_and_magnitude(self):
        bits = np.array([0, 1, 1, 0, 1, 0, 0, 1], dtype=np.uint8)
        chips, phase = cck_codeword(bits, rate_mbps=11.0, previous_phase=0.0, symbol_index=0)
        assert chips.size == CCK_CHIPS_PER_SYMBOL
        assert np.allclose(np.abs(chips), 1.0)

    def test_codeword_set_sizes(self):
        assert len(cck_codeword_set(11.0)) == 64
        assert len(cck_codeword_set(5.5)) == 4

    def test_codewords_distinct(self):
        table = cck_codeword_set(11.0)
        keys = list(table)
        for i in range(0, len(keys), 7):
            for j in range(i + 1, len(keys), 13):
                assert not np.allclose(table[keys[i]], table[keys[j]])

    @pytest.mark.parametrize("rate", [5.5, 11.0])
    def test_encode_decode_roundtrip(self, rate, rng):
        bits_per_symbol = 8 if rate == 11.0 else 4
        previous_phase = 0.0
        decode_phase = 0.0
        for index in range(20):
            bits = rng.integers(0, 2, bits_per_symbol).astype(np.uint8)
            chips, previous_phase = cck_codeword(
                bits, rate_mbps=rate, previous_phase=previous_phase, symbol_index=index
            )
            decoded, decode_phase = cck_decode_symbol(
                chips, rate_mbps=rate, previous_phase=decode_phase, symbol_index=index
            )
            assert np.array_equal(decoded, bits)

    def test_wrong_bit_count(self):
        with pytest.raises(ConfigurationError):
            cck_codeword(np.ones(5, dtype=np.uint8), rate_mbps=11.0, previous_phase=0.0, symbol_index=0)

    def test_unsupported_rate(self):
        with pytest.raises(ConfigurationError):
            cck_codeword(np.ones(8, dtype=np.uint8), rate_mbps=2.0, previous_phase=0.0, symbol_index=0)

    def test_decode_wrong_chip_count(self):
        with pytest.raises(ValueError):
            cck_decode_symbol(np.ones(7, dtype=complex), rate_mbps=11.0, previous_phase=0.0, symbol_index=0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=8))
    def test_property_11mbps_roundtrip(self, bits):
        bits = np.asarray(bits, dtype=np.uint8)
        chips, phase = cck_codeword(bits, rate_mbps=11.0, previous_phase=0.3, symbol_index=1)
        decoded, _ = cck_decode_symbol(chips, rate_mbps=11.0, previous_phase=0.3, symbol_index=1)
        assert np.array_equal(decoded, bits)
