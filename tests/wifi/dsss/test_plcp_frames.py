"""Tests for PLCP preamble/header construction and MAC frame helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DecodeError, PacketFormatError
from repro.wifi.dsss.frames import (
    WifiDataFrame,
    build_cts_frame,
    build_rts_frame,
    mpdu_with_fcs,
    verify_fcs,
)
from repro.wifi.dsss.plcp import (
    PLCP_HEADER_BITS,
    PLCP_PREAMBLE_BITS,
    SHORT_PLCP_PREAMBLE_BITS,
    build_plcp_preamble_and_header,
    parse_plcp_header,
)


class TestPlcp:
    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5, 11.0])
    def test_long_preamble_roundtrip(self, rate):
        bits = build_plcp_preamble_and_header(rate, 100)
        assert bits.size == PLCP_PREAMBLE_BITS + PLCP_HEADER_BITS
        header = parse_plcp_header(bits[PLCP_PREAMBLE_BITS:])
        assert header.rate_mbps == rate
        assert header.crc_ok
        assert header.psdu_length_bytes() == 100

    @pytest.mark.parametrize("rate", [2.0, 5.5, 11.0])
    @pytest.mark.parametrize("length", [1, 37, 38, 77, 104, 209, 1000])
    def test_length_field_roundtrip(self, rate, length):
        bits = build_plcp_preamble_and_header(rate, length, short_preamble=True)
        header = parse_plcp_header(bits[SHORT_PLCP_PREAMBLE_BITS:])
        assert header.psdu_length_bytes() == length

    def test_short_preamble_is_shorter(self):
        long = build_plcp_preamble_and_header(2.0, 50)
        short = build_plcp_preamble_and_header(2.0, 50, short_preamble=True)
        assert short.size < long.size

    def test_short_preamble_rejects_1mbps(self):
        with pytest.raises(ConfigurationError):
            build_plcp_preamble_and_header(1.0, 50, short_preamble=True)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            build_plcp_preamble_and_header(3.0, 50)

    def test_invalid_length(self):
        with pytest.raises(ConfigurationError):
            build_plcp_preamble_and_header(2.0, 0)

    def test_corrupted_signal_field_detected(self):
        bits = build_plcp_preamble_and_header(2.0, 50)
        header_bits = bits[PLCP_PREAMBLE_BITS:].copy()
        header_bits[0] ^= 1
        try:
            header = parse_plcp_header(header_bits)
            assert not header.crc_ok
        except DecodeError:
            pass  # an invalid SIGNAL value is also an acceptable outcome

    def test_header_too_short(self):
        with pytest.raises(DecodeError):
            parse_plcp_header(np.zeros(20, dtype=np.uint8))


class TestFrames:
    def test_data_frame_roundtrip(self):
        frame = WifiDataFrame(payload=b"neural data", sequence_number=42)
        parsed = WifiDataFrame.parse(frame.mpdu())
        assert parsed.payload == b"neural data"
        assert parsed.sequence_number == 42

    def test_fcs_detects_corruption(self):
        mpdu = bytearray(WifiDataFrame(payload=b"x" * 10).mpdu())
        mpdu[30] ^= 0xFF
        assert not verify_fcs(bytes(mpdu))

    def test_mpdu_length(self):
        frame = WifiDataFrame(payload=b"x" * 10)
        assert frame.mpdu_length_bytes == len(frame.mpdu()) == 24 + 10 + 4

    def test_bad_address(self):
        with pytest.raises(PacketFormatError):
            WifiDataFrame(payload=b"", destination=b"\x01")

    def test_bad_sequence_number(self):
        with pytest.raises(PacketFormatError):
            WifiDataFrame(payload=b"", sequence_number=4096)

    def test_parse_rejects_bad_fcs(self):
        with pytest.raises(PacketFormatError):
            WifiDataFrame.parse(b"\x00" * 40)

    def test_rts_cts_sizes(self):
        assert len(build_rts_frame(500)) == 20
        assert len(build_cts_frame(500)) == 14

    def test_rts_cts_fcs_valid(self):
        assert verify_fcs(build_rts_frame(100))
        assert verify_fcs(build_cts_frame(100))

    def test_mpdu_with_fcs_verifies(self):
        assert verify_fcs(mpdu_with_fcs(b"arbitrary body"))
