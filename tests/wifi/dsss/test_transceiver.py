"""End-to-end tests for the 802.11b transmitter → receiver chain."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, SynchronizationError
from repro.utils.dsp import add_awgn
from repro.wifi.dsss.frames import WifiDataFrame, mpdu_with_fcs
from repro.wifi.dsss.receiver import DsssReceiver
from repro.wifi.dsss.transmitter import CHIP_RATE_HZ, DsssRate, DsssTransmitter


class TestDsssRate:
    def test_from_mbps(self):
        assert DsssRate.from_mbps(5.5) is DsssRate.RATE_5_5

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            DsssRate.from_mbps(3.0)

    def test_mbps_property(self):
        assert DsssRate.RATE_11.mbps == 11.0


class TestTransmitter:
    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5, 11.0])
    def test_chip_rate_constant(self, rate):
        tx = DsssTransmitter(rate)
        packet = tx.encode_frame(WifiDataFrame(payload=b"abcdefgh"))
        assert packet.chip_rate_hz == CHIP_RATE_HZ

    def test_higher_rate_fewer_chips(self):
        payload = WifiDataFrame(payload=b"x" * 64)
        slow = DsssTransmitter(2.0).encode_frame(payload)
        fast = DsssTransmitter(11.0).encode_frame(payload)
        assert len(fast) < len(slow)

    def test_air_time_matches_chip_count(self):
        tx = DsssTransmitter(2.0)
        packet = tx.encode_frame(WifiDataFrame(payload=b"y" * 30))
        assert packet.duration_s == pytest.approx(tx.air_time_s(len(packet.psdu)), rel=1e-6)

    def test_unit_magnitude_chips(self):
        packet = DsssTransmitter(11.0).encode_frame(WifiDataFrame(payload=b"z" * 16))
        assert np.allclose(np.abs(packet.chips), 1.0)

    def test_empty_psdu_rejected(self):
        with pytest.raises(ConfigurationError):
            DsssTransmitter(2.0).encode_psdu(b"")

    def test_short_preamble_1mbps_rejected(self):
        with pytest.raises(ConfigurationError):
            DsssTransmitter(1.0, short_preamble=True)

    def test_max_psdu_for_duration(self):
        tx = DsssTransmitter(2.0, short_preamble=True)
        # 248 µs BLE payload window: 38 bytes at 2 Mbps (§2.3.3).
        assert tx.max_psdu_bytes_for_duration(248e-6) == 38

    def test_plcp_overhead(self):
        assert DsssTransmitter(2.0).plcp_overhead_s == pytest.approx(192e-6)
        assert DsssTransmitter(2.0, short_preamble=True).plcp_overhead_s == pytest.approx(96e-6)


class TestReceiver:
    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5, 11.0])
    @pytest.mark.parametrize("payload_len", [1, 28, 97])
    def test_long_preamble_roundtrip(self, rate, payload_len):
        frame = WifiDataFrame(payload=bytes(range(256))[:payload_len], sequence_number=9)
        packet = DsssTransmitter(rate).encode_frame(frame)
        result = DsssReceiver().decode_chips(packet.chips)
        assert result.crc_ok
        assert result.payload == frame.payload
        assert result.rate.mbps == rate

    @pytest.mark.parametrize("rate", [2.0, 5.5, 11.0])
    def test_short_preamble_roundtrip(self, rate):
        frame = WifiDataFrame(payload=b"short preamble roundtrip", sequence_number=1)
        packet = DsssTransmitter(rate, short_preamble=True).encode_frame(frame)
        result = DsssReceiver(short_preamble=True).decode_chips(packet.chips)
        assert result.crc_ok
        assert result.payload == frame.payload

    def test_decodes_at_moderate_snr(self, rng):
        packet = DsssTransmitter(2.0).encode_frame(WifiDataFrame(payload=b"noisy packet"))
        noisy = add_awgn(packet.chips, 12.0, rng=rng)
        result = DsssReceiver().decode_chips(noisy)
        assert result.crc_ok

    def test_fails_gracefully_at_terrible_snr(self, rng):
        packet = DsssTransmitter(2.0).encode_frame(WifiDataFrame(payload=b"hopeless"))
        noisy = add_awgn(packet.chips, -15.0, rng=rng)
        try:
            result = DsssReceiver().decode_chips(noisy)
            assert not result.crc_ok
        except Exception:
            pass  # any DecodeError subclass is acceptable

    def test_truncated_waveform(self):
        with pytest.raises(SynchronizationError):
            DsssReceiver().decode_chips(np.ones(100, dtype=complex))

    def test_minimal_psdu_roundtrip(self):
        psdu = mpdu_with_fcs(b"\x01\x02" + b"compact experiment frame")
        packet = DsssTransmitter(2.0, short_preamble=True).encode_psdu(psdu)
        result = DsssReceiver(short_preamble=True).decode_chips(packet.chips)
        assert result.crc_ok
        assert result.psdu == psdu

    def test_rssi_reported(self):
        packet = DsssTransmitter(2.0).encode_frame(WifiDataFrame(payload=b"rssi"))
        result = DsssReceiver().decode_chips(packet.chips * 0.01)
        assert result.rssi_dbm < 0.0

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=60))
    def test_property_arbitrary_payload_roundtrip(self, payload):
        frame = WifiDataFrame(payload=payload)
        packet = DsssTransmitter(11.0).encode_frame(frame)
        result = DsssReceiver().decode_chips(packet.chips)
        assert result.crc_ok
        assert result.payload == payload
