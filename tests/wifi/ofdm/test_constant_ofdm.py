"""Tests for the constant-OFDM (AM downlink) payload crafting (§2.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.constant_ofdm import (
    DOWNLINK_BIT_RATE_BPS,
    ConstantOfdmCrafter,
    symbol_peak_to_average,
)
from repro.wifi.ofdm.rates import OfdmRate


class TestPlan:
    def test_two_symbols_per_bit(self):
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
        plan = crafter.plan(np.array([1, 0, 1], dtype=np.uint8), scrambler_seed=0x21)
        assert len(plan.symbol_kinds) == 6

    def test_bit_encoding_follows_fig8(self):
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
        plan = crafter.plan(np.array([1, 0], dtype=np.uint8), scrambler_seed=0x21)
        assert plan.symbol_kinds == ("random", "constant", "random", "random")

    def test_empty_message_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantOfdmCrafter().plan(np.zeros(0, dtype=np.uint8), scrambler_seed=0x21)

    def test_invalid_constant_value(self):
        with pytest.raises(ConfigurationError):
            ConstantOfdmCrafter(constant_bit_value=2)

    def test_bit_rate_constant(self):
        assert DOWNLINK_BIT_RATE_BPS == 125e3


class TestWaveform:
    @pytest.mark.parametrize("rate", [OfdmRate.RATE_24, OfdmRate.RATE_36, OfdmRate.RATE_54])
    def test_constant_symbols_have_high_papr(self, rate):
        crafter = ConstantOfdmCrafter(rate)
        message = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        plan, waveform = crafter.encode_message(message, scrambler_seed=0x31)
        paprs = np.array(
            [symbol_peak_to_average(waveform.data_symbol(i)) for i in range(waveform.num_data_symbols)]
        )
        constant = paprs[[k == "constant" for k in plan.symbol_kinds]]
        random = paprs[[k == "random" for k in plan.symbol_kinds]]
        assert constant.min() > 3.0 * random.max() / 2.0
        assert constant.min() > 15.0

    def test_wrong_seed_destroys_constant_symbols(self):
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
        message = np.array([1, 1, 1, 1], dtype=np.uint8)
        plan = crafter.plan(message, scrambler_seed=0x10)
        good = crafter.waveform(plan)

        # Re-encode the same data bits with a different actual seed.
        from repro.core.downlink import AmSymbolPlanWithSeed

        bad = crafter.waveform(AmSymbolPlanWithSeed(plan, actual_seed=0x20))
        good_paprs = [
            symbol_peak_to_average(good.data_symbol(2 * i + 1)) for i in range(message.size)
        ]
        bad_paprs = [
            symbol_peak_to_average(bad.data_symbol(2 * i + 1)) for i in range(message.size)
        ]
        assert min(good_paprs) > 15.0
        assert max(bad_paprs) < 15.0

    def test_papr_profile_helper(self):
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
        plan = crafter.plan(np.array([1, 0], dtype=np.uint8), scrambler_seed=0x42)
        profile = crafter.symbol_papr_profile(plan)
        assert profile.size == 4

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=1, max_value=127))
    def test_property_any_seed_yields_constant_symbols(self, seed):
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
        plan, waveform = crafter.encode_message(np.array([1], dtype=np.uint8), scrambler_seed=seed)
        papr = symbol_peak_to_average(waveform.data_symbol(1))
        assert papr > 15.0


class TestPeakDetectorIntegration:
    def test_peak_detector_recovers_message(self, rng):
        from repro.backscatter.detector import PeakDetectorReceiver

        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36, rng=rng)
        message = rng.integers(0, 2, 24).astype(np.uint8)
        plan, waveform = crafter.encode_message(message, scrambler_seed=0x19)
        detector = PeakDetectorReceiver()
        decoded = detector.decode_bits(
            waveform.samples,
            samples_per_symbol=80,
            num_symbols=waveform.num_data_symbols,
            start_sample=waveform.data_start_sample,
        )
        assert np.array_equal(decoded[: message.size], message)
