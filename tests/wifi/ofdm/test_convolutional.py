"""Tests for the 802.11 convolutional code and Viterbi decoder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.convolutional import (
    ConvolutionalEncoder,
    ViterbiDecoder,
    depuncture,
    puncture,
)


class TestEncoder:
    def test_rate_half_output_length(self):
        encoder = ConvolutionalEncoder()
        assert encoder.encode(np.ones(10, dtype=np.uint8)).size == 20

    def test_paper_equations_all_zero_history(self):
        # C1[k] = b[k]^b[k-2]^b[k-3]^b[k-5]^b[k-6]; with zero history a single
        # one at k=0 produces C1=C2=1.
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(np.array([1], dtype=np.uint8))
        assert coded.tolist() == [1, 1]

    def test_all_zeros_encode_to_all_zeros(self):
        encoder = ConvolutionalEncoder()
        assert np.all(encoder.encode(np.zeros(48, dtype=np.uint8)) == 0)

    def test_all_ones_with_ones_history_encode_to_all_ones(self):
        # The property exploited by the constant-OFDM construction (§2.4).
        encoder = ConvolutionalEncoder(initial_history=np.ones(6, dtype=np.uint8))
        assert np.all(encoder.encode(np.ones(48, dtype=np.uint8)) == 1)

    def test_all_ones_without_history_is_not_all_ones(self):
        encoder = ConvolutionalEncoder()
        assert not np.all(encoder.encode(np.ones(48, dtype=np.uint8)) == 1)

    def test_history_tracked(self):
        encoder = ConvolutionalEncoder()
        encoder.encode(np.array([1, 0, 1, 1, 0, 1], dtype=np.uint8))
        assert encoder.history == (1, 0, 1, 1, 0, 1)

    def test_bad_history_length(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalEncoder(initial_history=np.ones(5, dtype=np.uint8))


class TestPuncturing:
    def test_rate_patterns(self):
        coded = np.arange(24) % 2
        assert puncture(coded.astype(np.uint8), "1/2").size == 24
        assert puncture(coded.astype(np.uint8), "2/3").size == 18
        assert puncture(coded.astype(np.uint8), "3/4").size == 16

    def test_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            puncture(np.zeros(12, dtype=np.uint8), "5/6")

    def test_depuncture_restores_length(self):
        coded = np.ones(24, dtype=np.uint8)
        punctured = puncture(coded, "3/4")
        full, mask = depuncture(punctured, "3/4")
        assert full.size == 24
        assert mask.sum() == punctured.size

    def test_wrong_block_size(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(13, dtype=np.uint8), "3/4")


class TestViterbi:
    def test_clean_decode(self, rng):
        data = rng.integers(0, 2, 200).astype(np.uint8)
        coded = ConvolutionalEncoder().encode(data)
        assert np.array_equal(ViterbiDecoder().decode(coded), data)

    def test_corrects_bit_errors(self, rng):
        data = rng.integers(0, 2, 200).astype(np.uint8)
        coded = ConvolutionalEncoder().encode(data)
        corrupted = coded.copy()
        corrupted[[10, 77, 150, 290]] ^= 1
        assert np.array_equal(ViterbiDecoder().decode(corrupted), data)

    def test_punctured_roundtrip(self, rng):
        data = rng.integers(0, 2, 144).astype(np.uint8)
        coded = ConvolutionalEncoder().encode(data)
        punctured = puncture(coded, "3/4")
        full, mask = depuncture(punctured, "3/4")
        assert np.array_equal(ViterbiDecoder().decode(full, known_mask=mask), data)

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            ViterbiDecoder().decode(np.zeros(3, dtype=np.uint8))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=10, max_size=80))
    def test_property_roundtrip(self, bits):
        data = np.asarray(bits, dtype=np.uint8)
        coded = ConvolutionalEncoder().encode(data)
        assert np.array_equal(ViterbiDecoder().decode(coded), data)
