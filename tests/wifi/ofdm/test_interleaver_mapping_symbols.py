"""Tests for the OFDM interleaver, constellation mapping and symbol builder."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.interleaver import deinterleave, interleave, interleaver_permutation
from repro.wifi.ofdm.mapping import Modulation, demap_symbols, map_bits
from repro.wifi.ofdm.rates import OFDM_RATE_PARAMETERS, OfdmRate
from repro.wifi.ofdm.symbols import (
    DATA_SUBCARRIER_INDICES,
    OFDM_SYMBOL_DURATION_S,
    OfdmSymbolBuilder,
    PILOT_SUBCARRIER_INDICES,
)


class TestInterleaver:
    @pytest.mark.parametrize("n_cbps,n_bpsc", [(48, 1), (96, 2), (192, 4), (288, 6)])
    def test_roundtrip(self, n_cbps, n_bpsc, rng):
        bits = rng.integers(0, 2, n_cbps).astype(np.uint8)
        assert np.array_equal(deinterleave(interleave(bits, n_bpsc), n_bpsc), bits)

    def test_permutation_is_bijection(self):
        perm = interleaver_permutation(192, 4)
        assert sorted(perm.tolist()) == list(range(192))

    def test_constant_block_invariant(self):
        # The §2.4 argument: all-ones interleaves to all-ones.
        ones = np.ones(192, dtype=np.uint8)
        assert np.all(interleave(ones, 4) == 1)
        assert np.all(interleave(1 - ones, 4) == 0)

    def test_adjacent_bits_spread(self):
        perm = interleaver_permutation(48, 1)
        assert abs(int(perm[1]) - int(perm[0])) > 1

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            interleaver_permutation(50, 1)


class TestMapping:
    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_roundtrip(self, modulation, rng):
        bits = rng.integers(0, 2, modulation.bits_per_symbol * 48).astype(np.uint8)
        symbols = map_bits(bits, modulation)
        assert np.array_equal(demap_symbols(symbols, modulation), bits)

    @pytest.mark.parametrize("modulation", list(Modulation))
    def test_unit_average_energy(self, modulation, rng):
        bits = rng.integers(0, 2, modulation.bits_per_symbol * 4800).astype(np.uint8)
        symbols = map_bits(bits, modulation)
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_constant_bits_map_to_single_point(self):
        bits = np.ones(48 * 4, dtype=np.uint8)
        symbols = map_bits(bits, Modulation.QAM16)
        assert np.allclose(symbols, symbols[0])

    def test_bit_count_check(self):
        with pytest.raises(ConfigurationError):
            map_bits(np.ones(5, dtype=np.uint8), Modulation.QAM16)

    def test_bits_per_symbol(self):
        assert [m.bits_per_symbol for m in Modulation] == [1, 2, 4, 6]


class TestRates:
    def test_36mbps_parameters(self):
        params = OfdmRate.RATE_36.parameters
        assert params.modulation is Modulation.QAM16
        assert params.coding_rate == "3/4"
        assert params.data_bits_per_symbol == 144

    def test_all_rates_consistent(self):
        for params in OFDM_RATE_PARAMETERS.values():
            assert params.coded_bits_per_symbol == 48 * params.modulation.bits_per_symbol
            numerator, denominator = params.coding_rate.split("/")
            expected = params.coded_bits_per_symbol * int(numerator) // int(denominator)
            assert params.data_bits_per_symbol == expected

    def test_from_mbps_unknown(self):
        with pytest.raises(ConfigurationError):
            OfdmRate.from_mbps(33.0)


class TestSymbolBuilder:
    def test_symbol_duration(self):
        assert OFDM_SYMBOL_DURATION_S == pytest.approx(4e-6)

    def test_subcarrier_counts(self):
        assert len(DATA_SUBCARRIER_INDICES) == 48
        assert len(PILOT_SUBCARRIER_INDICES) == 4

    def test_build_split_roundtrip(self, rng):
        builder = OfdmSymbolBuilder()
        points = (rng.standard_normal(48) + 1j * rng.standard_normal(48)) / np.sqrt(2)
        samples = builder.build_symbol(points, symbol_index=0)
        assert samples.size == 80
        recovered = builder.split_symbol(samples)
        assert np.allclose(recovered, points, atol=1e-9)

    def test_cyclic_prefix_is_copy_of_tail(self, rng):
        builder = OfdmSymbolBuilder()
        points = rng.standard_normal(48).astype(complex)
        samples = builder.build_symbol(points, symbol_index=3)
        assert np.allclose(samples[:16], samples[-16:])

    def test_constant_symbol_is_impulse_like(self):
        builder = OfdmSymbolBuilder()
        points = np.full(48, 1.0 + 1.0j) / np.sqrt(2.0)
        samples = builder.build_symbol(points, symbol_index=0)
        power = np.abs(samples) ** 2
        # Most energy concentrated in very few samples (Fig. 7).
        assert np.max(power) / np.mean(power) > 20.0

    def test_wrong_point_count(self):
        with pytest.raises(ConfigurationError):
            OfdmSymbolBuilder().build_symbol(np.ones(40, dtype=complex), 0)

    def test_pilot_extraction(self, rng):
        builder = OfdmSymbolBuilder()
        points = rng.standard_normal(48).astype(complex)
        samples = builder.build_symbol(points, symbol_index=0)
        pilots = builder.pilot_points(samples)
        assert pilots.size == 4
        assert np.allclose(np.abs(pilots), 1.0, atol=1e-9)
