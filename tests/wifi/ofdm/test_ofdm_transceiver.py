"""End-to-end tests for the 802.11g OFDM transmitter → receiver chain."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.dsp import add_awgn
from repro.wifi.ofdm.receiver import OfdmReceiver
from repro.wifi.ofdm.transmitter import OfdmTransmitter, build_preamble


class TestTransmitter:
    def test_preamble_length(self):
        # 10 short symbols (160 samples) + guard + 2 long symbols (160) = 320.
        assert build_preamble().size == 320

    @pytest.mark.parametrize("rate", [6.0, 12.0, 24.0, 36.0, 54.0])
    def test_symbol_count_matches_formula(self, rate):
        tx = OfdmTransmitter(rate)
        psdu = bytes(range(64))
        waveform = tx.encode_psdu(psdu)
        assert waveform.num_data_symbols == tx.num_symbols_for_psdu(len(psdu))

    def test_air_time(self):
        tx = OfdmTransmitter(36.0)
        waveform = tx.encode_psdu(bytes(100))
        assert waveform.duration_s == pytest.approx(tx.air_time_s(100), rel=1e-6)

    def test_data_symbol_accessor(self):
        waveform = OfdmTransmitter(36.0).encode_psdu(bytes(50))
        assert waveform.data_symbol(0).size == 80
        with pytest.raises(IndexError):
            waveform.data_symbol(waveform.num_data_symbols)

    def test_empty_psdu_rejected(self):
        with pytest.raises(ConfigurationError):
            OfdmTransmitter(36.0).encode_psdu(b"")

    def test_20mhz_sample_rate(self):
        waveform = OfdmTransmitter(24.0).encode_psdu(bytes(10))
        assert waveform.sample_rate_hz == 20e6


class TestReceiver:
    @pytest.mark.parametrize("rate", [6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0])
    def test_roundtrip_all_rates(self, rate):
        psdu = bytes((7 * i + 3) % 256 for i in range(73))
        waveform = OfdmTransmitter(rate).encode_psdu(psdu, scrambler_seed=0x2F)
        result = OfdmReceiver(rate).decode(waveform)
        assert result.psdu == psdu
        assert result.scrambler_seed == 0x2F

    def test_seed_recovery_across_seeds(self):
        psdu = bytes(32)
        for seed in (0x01, 0x3C, 0x7F):
            waveform = OfdmTransmitter(36.0).encode_psdu(psdu, scrambler_seed=seed)
            assert OfdmReceiver(36.0).decode(waveform).scrambler_seed == seed

    def test_decode_with_noise(self, rng):
        psdu = bytes(range(50))
        waveform = OfdmTransmitter(12.0).encode_psdu(psdu, scrambler_seed=0x55)
        noisy_samples = add_awgn(waveform.samples, 25.0, rng=rng)
        result = OfdmReceiver(12.0).decode(
            noisy_samples,
            num_data_symbols=waveform.num_data_symbols,
            data_start_sample=waveform.data_start_sample,
            psdu_length_bytes=len(psdu),
        )
        assert result.psdu == psdu

    def test_bit_error_reporting(self):
        psdu = bytes(64)
        waveform = OfdmTransmitter(36.0).encode_psdu(psdu)
        result = OfdmReceiver(36.0).decode(waveform, reference_psdu=psdu)
        assert result.bit_errors_vs == 0

    def test_raw_samples_need_metadata(self):
        waveform = OfdmTransmitter(36.0).encode_psdu(bytes(16))
        from repro.exceptions import DecodeError

        with pytest.raises(DecodeError):
            OfdmReceiver(36.0).decode(waveform.samples)
