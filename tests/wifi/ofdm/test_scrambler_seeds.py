"""Tests for the chipset scrambler-seed behaviour models (§4.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.scrambler_seeds import (
    CHIPSET_SEED_MODELS,
    AtherosIncrementingSeedModel,
    FixedSeedModel,
    RandomSeedModel,
)


class TestAtherosModel:
    def test_increments_by_one(self):
        model = AtherosIncrementingSeedModel(initial_seed=10)
        assert [model.next_seed() for _ in range(4)] == [10, 11, 12, 13]

    def test_wraps_within_nonzero_7bit_range(self):
        model = AtherosIncrementingSeedModel(initial_seed=0x7F)
        assert model.next_seed() == 0x7F
        assert model.next_seed() == 0x01

    def test_prediction_matches_actual(self):
        model = AtherosIncrementingSeedModel(initial_seed=5)
        predicted = [model.predict(k) for k in range(6)]
        actual = [model.next_seed() for _ in range(6)]
        assert predicted == actual

    def test_predictable(self):
        assert AtherosIncrementingSeedModel().predictable

    def test_invalid_seed(self):
        with pytest.raises(ConfigurationError):
            AtherosIncrementingSeedModel(initial_seed=0)

    def test_negative_prediction(self):
        with pytest.raises(ValueError):
            AtherosIncrementingSeedModel().predict(-1)


class TestFixedModel:
    def test_constant(self):
        model = FixedSeedModel(seed=0x3A)
        assert {model.next_seed() for _ in range(10)} == {0x3A}

    def test_prediction(self):
        assert FixedSeedModel(seed=0x3A).predict(100) == 0x3A

    def test_invalid_seed(self):
        with pytest.raises(ConfigurationError):
            FixedSeedModel(seed=0x80)


class TestRandomModel:
    def test_not_predictable(self):
        assert not RandomSeedModel(np.random.default_rng(0)).predictable

    def test_seeds_in_range(self):
        model = RandomSeedModel(np.random.default_rng(0))
        seeds = [model.next_seed() for _ in range(200)]
        assert all(1 <= s <= 0x7F for s in seeds)
        assert len(set(seeds)) > 50


class TestRegistry:
    def test_paper_chipsets_are_incrementing(self):
        for chipset in ("AR5001G", "AR5007G", "AR9580"):
            assert CHIPSET_SEED_MODELS[chipset] is AtherosIncrementingSeedModel

    def test_ath5k_fixed_available(self):
        assert CHIPSET_SEED_MODELS["ath5k_fixed"] is FixedSeedModel
