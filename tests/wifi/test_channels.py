"""Tests for the Wi-Fi channel map."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.wifi.channels import (
    NON_OVERLAPPING_CHANNELS,
    WIFI_80211B_BANDWIDTH_MHZ,
    wifi_channel_frequency_mhz,
)


class TestWifiChannels:
    def test_paper_channels(self):
        # Fig. 3: channels 1, 6 and 11 at 2412, 2437 and 2462 MHz.
        assert wifi_channel_frequency_mhz(1) == 2412.0
        assert wifi_channel_frequency_mhz(6) == 2437.0
        assert wifi_channel_frequency_mhz(11) == 2462.0

    def test_channel_14_special_case(self):
        assert wifi_channel_frequency_mhz(14) == 2484.0

    def test_non_overlapping(self):
        assert NON_OVERLAPPING_CHANNELS == (1, 6, 11)
        freqs = [wifi_channel_frequency_mhz(c) for c in NON_OVERLAPPING_CHANNELS]
        for a, b in zip(freqs, freqs[1:], strict=False):
            assert b - a >= WIFI_80211B_BANDWIDTH_MHZ

    def test_invalid_channel(self):
        with pytest.raises(ConfigurationError):
            wifi_channel_frequency_mhz(0)

    def test_shift_from_ble38_to_channel11(self):
        # The frequency plan behind the 35.75 MHz shift: BLE 38 sits 36 MHz
        # below Wi-Fi channel 11.
        assert wifi_channel_frequency_mhz(11) - 2426.0 == pytest.approx(36.0)
