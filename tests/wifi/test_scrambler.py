"""Tests for the 802.11 scrambler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.wifi.scrambler import Ieee80211Scrambler, scrambler_keystream


class TestScrambler:
    def test_scramble_is_involution(self, rng):
        data = rng.integers(0, 2, 500).astype(np.uint8)
        scrambled = Ieee80211Scrambler(0x5D).scramble(data)
        recovered = Ieee80211Scrambler(0x5D).scramble(scrambled)
        assert np.array_equal(recovered, data)

    def test_different_seeds_differ(self):
        zeros = np.zeros(64, dtype=np.uint8)
        a = Ieee80211Scrambler(0x11).scramble(zeros)
        b = Ieee80211Scrambler(0x12).scramble(zeros)
        assert not np.array_equal(a, b)

    def test_keystream_period_127(self):
        keystream = Ieee80211Scrambler(0x01).keystream(254)
        assert np.array_equal(keystream[:127], keystream[127:])

    def test_keystream_balanced(self):
        # A maximal-length 7-bit LFSR emits 64 ones and 63 zeros per period.
        keystream = Ieee80211Scrambler(0x2A).keystream(127)
        assert keystream.sum() == 64

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Ieee80211Scrambler(0)

    def test_large_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            Ieee80211Scrambler(0x80)

    def test_reset_restores_sequence(self):
        scrambler = Ieee80211Scrambler(0x33)
        first = scrambler.keystream(32)
        scrambler.reset()
        assert np.array_equal(scrambler.keystream(32), first)

    def test_reset_with_new_seed(self):
        scrambler = Ieee80211Scrambler(0x33)
        scrambler.reset(0x44)
        assert scrambler.seed == 0x44

    def test_keystream_helper(self):
        assert np.array_equal(scrambler_keystream(0x7F, 16), Ieee80211Scrambler(0x7F).keystream(16))

    @given(st.integers(min_value=1, max_value=127))
    def test_property_all_seeds_produce_nonzero_keystreams(self, seed):
        keystream = scrambler_keystream(seed, 127)
        assert 0 < keystream.sum() < 127

    @given(st.integers(min_value=1, max_value=127), st.integers(min_value=1, max_value=127))
    def test_property_seed_recoverable_from_first_seven_bits(self, seed, other):
        # The downlink relies on inverting the scrambler from the SERVICE field.
        first = scrambler_keystream(seed, 7)
        second = scrambler_keystream(other, 7)
        if seed != other:
            assert not np.array_equal(first, second)
