"""Tests for 802.15.4 chip sequences, channels and packet framing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, CrcError, PacketFormatError
from repro.zigbee.channels import ZIGBEE_CHANNELS, zigbee_channel_frequency_mhz
from repro.zigbee.chips import CHIP_SEQUENCES, CHIPS_PER_SYMBOL, chips_to_symbol, symbol_to_chips
from repro.zigbee.packet import (
    MAX_PSDU_BYTES,
    ZigbeeFrame,
    build_phy_frame,
    parse_phy_frame,
)


class TestChannels:
    def test_sixteen_channels(self):
        assert len(ZIGBEE_CHANNELS) == 16

    def test_paper_channel_14(self):
        # §4.5: backscatter lands on channel 14 = 2.420 GHz.
        assert zigbee_channel_frequency_mhz(14) == 2420.0

    def test_5mhz_spacing(self):
        assert zigbee_channel_frequency_mhz(12) - zigbee_channel_frequency_mhz(11) == 5.0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            zigbee_channel_frequency_mhz(10)


class TestChipSequences:
    def test_sixteen_sequences_of_32_chips(self):
        assert len(CHIP_SEQUENCES) == 16
        assert all(seq.size == CHIPS_PER_SYMBOL for seq in CHIP_SEQUENCES.values())

    def test_sequences_distinct(self):
        for a in range(16):
            for b in range(a + 1, 16):
                assert not np.array_equal(CHIP_SEQUENCES[a], CHIP_SEQUENCES[b])

    def test_sequences_nearly_orthogonal(self):
        # Distinct sequences differ in a large number of chip positions.
        for a in range(8):
            for b in range(a + 1, 8):
                distance = np.count_nonzero(CHIP_SEQUENCES[a] != CHIP_SEQUENCES[b])
                assert distance >= 12

    def test_symbol_roundtrip_clean(self):
        for symbol in range(16):
            decoded, distance = chips_to_symbol(symbol_to_chips(symbol))
            assert decoded == symbol
            assert distance == 0

    def test_symbol_roundtrip_with_chip_errors(self, rng):
        for symbol in range(16):
            chips = symbol_to_chips(symbol)
            corrupted = chips.copy()
            corrupted[rng.choice(32, size=4, replace=False)] ^= 1
            decoded, distance = chips_to_symbol(corrupted)
            assert decoded == symbol
            assert distance == 4

    def test_invalid_symbol(self):
        with pytest.raises(ConfigurationError):
            symbol_to_chips(16)

    def test_wrong_chip_count(self):
        with pytest.raises(ValueError):
            chips_to_symbol(np.zeros(31, dtype=np.uint8))

    @given(st.integers(min_value=0, max_value=15))
    def test_property_roundtrip(self, symbol):
        decoded, _ = chips_to_symbol(symbol_to_chips(symbol))
        assert decoded == symbol


class TestPacket:
    def test_frame_roundtrip(self):
        frame = ZigbeeFrame(payload=b"interscatter zigbee", sequence_number=7)
        parsed = ZigbeeFrame.parse(frame.mac_frame())
        assert parsed.payload == b"interscatter zigbee"
        assert parsed.sequence_number == 7
        assert parsed.pan_id == frame.pan_id

    def test_fcs_detects_corruption(self):
        psdu = bytearray(ZigbeeFrame(payload=b"x" * 10).mac_frame())
        psdu[12] ^= 0x01
        with pytest.raises(CrcError):
            ZigbeeFrame.parse(bytes(psdu))

    def test_payload_size_limit(self):
        with pytest.raises(PacketFormatError):
            ZigbeeFrame(payload=b"x" * (MAX_PSDU_BYTES))

    def test_phy_frame_roundtrip(self):
        psdu = ZigbeeFrame(payload=b"ppdu").mac_frame()
        assert parse_phy_frame(build_phy_frame(psdu)) == psdu

    def test_phy_frame_bad_preamble(self):
        ppdu = bytearray(build_phy_frame(b"x" * 12))
        ppdu[0] = 0xFF
        with pytest.raises(PacketFormatError):
            parse_phy_frame(bytes(ppdu))

    def test_phy_frame_bad_sfd(self):
        ppdu = bytearray(build_phy_frame(b"x" * 12))
        ppdu[4] = 0x00
        with pytest.raises(PacketFormatError):
            parse_phy_frame(bytes(ppdu))

    def test_phy_frame_empty_psdu(self):
        with pytest.raises(PacketFormatError):
            build_phy_frame(b"")
