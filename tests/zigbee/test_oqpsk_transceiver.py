"""Tests for the O-QPSK modem and the ZigBee transmitter/receiver chain."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DecodeError
from repro.utils.dsp import add_awgn
from repro.zigbee.oqpsk import CHIP_RATE_HZ, OqpskDemodulator, OqpskModulator, OqpskWaveform
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZIGBEE_BIT_RATE_BPS, ZigbeeFrame, ZigbeeTransmitter, bytes_to_chips


class TestOqpsk:
    def test_chip_rate(self):
        assert CHIP_RATE_HZ == 2e6

    def test_roundtrip(self, rng):
        chips = rng.integers(0, 2, 256).astype(np.uint8)
        modulator = OqpskModulator(4)
        demodulator = OqpskDemodulator(4)
        recovered = demodulator.demodulate(modulator.modulate(chips))
        assert np.array_equal(recovered, chips)

    def test_roundtrip_with_noise(self, rng):
        chips = rng.integers(0, 2, 256).astype(np.uint8)
        modulator = OqpskModulator(4)
        waveform = modulator.modulate(chips)
        noisy = OqpskWaveform(
            samples=add_awgn(waveform.samples, 15.0, rng=rng),
            sample_rate_hz=waveform.sample_rate_hz,
            num_chips=waveform.num_chips,
        )
        recovered = OqpskDemodulator(4).demodulate(noisy)
        assert np.count_nonzero(recovered != chips) <= 2

    def test_odd_chip_count_rejected(self):
        with pytest.raises(ConfigurationError):
            OqpskModulator(4).modulate(np.ones(7, dtype=np.uint8))

    def test_odd_oversampling_rejected(self):
        with pytest.raises(ConfigurationError):
            OqpskModulator(3)

    def test_duration(self):
        waveform = OqpskModulator(4).modulate(np.ones(64, dtype=np.uint8))
        assert waveform.duration_s == pytest.approx((64 + 2) / CHIP_RATE_HZ, rel=0.1)


class TestZigbeeChain:
    def test_bit_rate_constant(self):
        assert ZIGBEE_BIT_RATE_BPS == 250e3

    def test_bytes_to_chips_length(self):
        assert bytes_to_chips(b"\x00").size == 64

    def test_full_packet_roundtrip(self):
        frame = ZigbeeFrame(payload=b"backscattered 802.15.4 frame", sequence_number=99)
        packet = ZigbeeTransmitter().encode_frame(frame)
        result = ZigbeeReceiver().decode_waveform(packet.waveform)
        assert result.crc_ok
        assert result.frame is not None
        assert result.frame.payload == frame.payload
        assert result.mean_chip_errors == 0.0

    def test_roundtrip_with_noise(self, rng):
        frame = ZigbeeFrame(payload=b"noisy zigbee", sequence_number=5)
        packet = ZigbeeTransmitter().encode_frame(frame)
        noisy = OqpskWaveform(
            samples=add_awgn(packet.waveform.samples, 12.0, rng=rng),
            sample_rate_hz=packet.waveform.sample_rate_hz,
            num_chips=packet.waveform.num_chips,
        )
        result = ZigbeeReceiver().decode_waveform(noisy)
        assert result.crc_ok

    def test_air_time(self):
        tx = ZigbeeTransmitter()
        packet = tx.encode_frame(ZigbeeFrame(payload=b"x" * 20))
        assert packet.duration_s == pytest.approx(tx.air_time_s(len(packet.psdu)), rel=0.05)

    def test_decode_rejects_tiny_input(self):
        with pytest.raises(DecodeError):
            ZigbeeReceiver().decode_chips(np.zeros(64, dtype=np.uint8))

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=40))
    def test_property_payload_roundtrip(self, payload):
        frame = ZigbeeFrame(payload=payload, sequence_number=1)
        packet = ZigbeeTransmitter().encode_frame(frame)
        result = ZigbeeReceiver().decode_waveform(packet.waveform)
        assert result.crc_ok
        assert result.frame.payload == payload
